package saebft

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// metricSum folds every sample of one series across its labels (nodes,
// phases, peers).
func metricSum(ms []Metric, name string) float64 {
	var sum float64
	for _, m := range ms {
		if m.Name == name {
			sum += m.Value
		}
	}
	return sum
}

// TestMetricsAcrossLayers drives a durable sim cluster through writes and a
// certified read, then asserts every layer left its fingerprints in the one
// shared registry: agreement, execution, durable storage, and the client
// path — plus lifecycle spans in the trace ring.
func TestMetricsAcrossLayers(t *testing.T) {
	c := startSim(t,
		WithMode(ModeSeparate),
		WithApp("kv"),
		WithClients(2),
		WithDataDir(t.TempDir()),
	)
	ctx := context.Background()
	cl := c.Client()
	for i := 0; i < 5; i++ {
		put, err := EncodeOp("kv", "put", fmt.Sprintf("k%d", i), "v")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Invoke(ctx, put); err != nil {
			t.Fatal(err)
		}
	}
	get, _ := EncodeOp("kv", "get", "k0")
	if _, err := cl.ReadCertified(ctx, get); err != nil {
		t.Fatal(err)
	}

	ms := c.Metrics()
	for _, name := range []string{
		"saebft_pbft_batches_total",       // agreement
		"saebft_pbft_phase_seconds_count", // agreement phase histograms
		"saebft_exec_batches_total",       // execution
		"saebft_wal_fsync_seconds_count",  // durable storage
		"saebft_client_reads_total",       // client read path
	} {
		if metricSum(ms, name) == 0 {
			t.Errorf("%s = 0, want > 0", name)
		}
	}
	if w := metricSum(ms, "saebft_client_pipeline_width"); w != 2 {
		t.Errorf("client pipeline width = %v, want 2", w)
	}

	stages := make(map[string]bool)
	for _, s := range c.Trace() {
		stages[s.Stage] = true
	}
	for _, stage := range []string{"submit", "pre_prepare", "prepared", "committed", "executed", "apply", "reply"} {
		if !stages[stage] {
			t.Errorf("trace ring has no %q span (got %v)", stage, stages)
		}
	}
}

// TestViewChangeMovesMetrics crashes the view-0 primary under load and
// asserts the agreement metrics observe the forced view change: the
// campaign counter and duration histogram move, the view gauge advances,
// and the phase histograms keep filling in the new view.
func TestViewChangeMovesMetrics(t *testing.T) {
	c := startSim(t, WithMode(ModeSeparate), WithApp("counter"), WithClients(2))
	ctx := context.Background()
	cl := c.Client()
	if _, err := cl.Invoke(ctx, []byte("inc")); err != nil {
		t.Fatal(err)
	}
	before := c.Metrics()
	if n := metricSum(before, "saebft_pbft_view_changes_total"); n != 0 {
		t.Fatalf("view changes before crash = %v, want 0", n)
	}
	phasesBefore := metricSum(before, "saebft_pbft_phase_seconds_count")

	if err := c.CrashAgreement(0); err != nil {
		t.Fatal(err)
	}
	if reply, err := cl.Invoke(ctx, []byte("inc")); err != nil {
		t.Fatalf("inc after primary crash: %v", err)
	} else if string(reply) != "2" {
		t.Fatalf("counter = %q, want 2", reply)
	}

	after := c.Metrics()
	if n := metricSum(after, "saebft_pbft_view_changes_total"); n < 1 {
		t.Errorf("view changes after crash = %v, want >= 1", n)
	}
	// Each surviving replica installs view 1: the per-node gauge peaks at 1.
	var maxView float64
	for _, m := range after {
		if m.Name == "saebft_pbft_view" && m.Value > maxView {
			maxView = m.Value
		}
	}
	if maxView < 1 {
		t.Errorf("max saebft_pbft_view = %v, want >= 1", maxView)
	}
	if n := metricSum(after, "saebft_pbft_view_change_seconds_count"); n < 1 {
		t.Errorf("view-change duration observations = %v, want >= 1", n)
	}
	if pa := metricSum(after, "saebft_pbft_phase_seconds_count"); pa <= phasesBefore {
		t.Errorf("phase histogram count %v did not move past %v across the view change", pa, phasesBefore)
	}
	vcStages := 0
	for _, s := range c.Trace() {
		if s.Stage == "view_change" || s.Stage == "new_view" {
			vcStages++
		}
	}
	if vcStages == 0 {
		t.Error("trace ring recorded no view_change/new_view spans")
	}
}

// fetch GETs a URL and returns the body.
func fetch(t *testing.T, url string) (string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body), resp.Header
}

// TestClusterOpsEndpoint serves a whole cluster's registry over HTTP and
// checks the exposition, the trace dump, and — after Close — that the ops
// server leaks no goroutines.
func TestClusterOpsEndpoint(t *testing.T) {
	start := runtime.NumGoroutine()
	c, err := NewCluster(
		WithApp("counter"),
		WithClients(2),
		WithMetricsAddr("127.0.0.1:0"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			c.Close()
		}
	}()
	if _, err := c.Client().Invoke(context.Background(), []byte("inc")); err != nil {
		t.Fatal(err)
	}

	addr := c.OpsAddr()
	if addr == "" {
		t.Fatal("OpsAddr empty after Start")
	}
	body, hdr := fetch(t, "http://"+addr+"/metrics")
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text v0.0.4", ct)
	}
	for _, want := range []string{
		"# TYPE saebft_pbft_batches_total counter",
		"saebft_pbft_phase_seconds_bucket",
		"saebft_exec_batches_total",
		"saebft_client_in_flight",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	traceBody, _ := fetch(t, "http://"+addr+"/debug/trace")
	var dump struct {
		Total uint64            `json:"total"`
		Spans []json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal([]byte(traceBody), &dump); err != nil {
		t.Fatalf("/debug/trace is not JSON: %v", err)
	}
	if dump.Total == 0 || len(dump.Spans) == 0 {
		t.Errorf("/debug/trace empty: total=%d spans=%d", dump.Total, len(dump.Spans))
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	closed = true
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("ops endpoint still serving after Close")
	}
	// The ops server (and the cluster) must wind all goroutines down.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > start {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d at start, %d after Close", start, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNodeOpsEndpoint runs a multi-process-style deployment in one test
// binary, scrapes an agreement node and an execution node, and checks each
// role serves its own layers (protocol + storage + links) the way the CI
// metrics-smoke job does against real processes.
func TestNodeOpsEndpoint(t *testing.T) {
	cfg, err := GenerateConfig(DeployParams{
		Mode:          ModeSeparate,
		App:           "counter",
		Seed:          "saebft-obs-test",
		ThresholdBits: 512,
		BasePort:      0,
	})
	if err != nil {
		t.Fatal(err)
	}
	freePortConfig(t, cfg)
	nodes, err := cfg.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	byRole := make(map[string]*Node)
	var running []*Node
	defer func() {
		for _, n := range running {
			n.Close()
		}
	}()
	for _, ni := range nodes {
		if ni.Role == "client" {
			continue
		}
		n, err := NewNode(cfg, ni.ID,
			NodeMetricsAddr("127.0.0.1:0"),
			NodeDataDir(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(ctx); err != nil {
			t.Fatalf("starting %s node %d: %v", ni.Role, ni.ID, err)
		}
		running = append(running, n)
		byRole[ni.Role] = n
	}
	cl, err := DialConfig(cfg, DialTimeout(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Invoke(ctx, []byte("inc")); err != nil {
		t.Fatal(err)
	}

	agreeBody, _ := fetch(t, "http://"+byRole["agreement"].OpsAddr()+"/metrics")
	for _, want := range []string{"saebft_pbft_batches_total", "saebft_wal_fsync_seconds_count", "saebft_link_frames_sent_total"} {
		if !strings.Contains(agreeBody, want) {
			t.Errorf("agreement /metrics missing %q", want)
		}
	}
	execBody, _ := fetch(t, "http://"+byRole["execution"].OpsAddr()+"/metrics")
	for _, want := range []string{"saebft_exec_batches_total", "saebft_link_frames_received_total"} {
		if !strings.Contains(execBody, want) {
			t.Errorf("execution /metrics missing %q", want)
		}
	}

	// The dialed handle's own registry carries the client path plus its
	// endpoints' link series.
	ms := cl.Metrics()
	if metricSum(ms, "saebft_link_frames_sent_total") == 0 {
		t.Error("dialed handle has no link series")
	}
	if metricSum(ms, "saebft_client_pipeline_width") == 0 {
		t.Error("dialed handle has no client series")
	}
}
