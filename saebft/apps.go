package saebft

import (
	"repro/internal/apps/registry"
	"repro/internal/sm"
	"repro/internal/types"
)

// StateMachine is the deterministic application hosted by execution
// replicas (§2): given the same operations and the same agreed
// nondeterministic inputs, all correct replicas transition identically.
//
// Execute must be deterministic — no clocks, no randomness, no iteration
// over unordered maps; NonDet carries the agreement cluster's oblivious
// nondeterminism (timestamp, pseudo-random bits) instead. Checkpoint and
// Restore must converge: Restore(Checkpoint(state)) == state on any
// replica.
type StateMachine = sm.StateMachine

// NonDet is the per-batch agreed nondeterministic input passed to Execute.
type NonDet = types.NonDet

// StateMachineFunc adapts a stateless function to StateMachine (useful for
// echo-style services with nothing to checkpoint).
func StateMachineFunc(f func(op []byte, nd NonDet) []byte) StateMachine {
	return sm.Func(f)
}

// RegisterApp adds an application to the shared registry, making its name
// usable in WithApp and in deployment config files. Registering an existing
// name replaces it. The factory is called once per hosting replica.
func RegisterApp(name string, factory func() StateMachine) {
	registry.Register(registry.Entry{
		Name: name,
		New:  func() sm.StateMachine { return factory() },
	})
}

// RegisterAppCLI is RegisterApp plus a command-line operation encoder,
// making the app drivable from the saebft-client tool: encode translates
// words like ["put", "k", "v"] into an encoded operation, and usage is the
// one-line synopsis shown in errors.
func RegisterAppCLI(name string, factory func() StateMachine, encode func(args []string) ([]byte, error), usage string) {
	registry.Register(registry.Entry{
		Name:   name,
		New:    func() sm.StateMachine { return factory() },
		Encode: encode,
		Usage:  usage,
	})
}

// Apps lists registered application names in sorted order. The built-ins
// are "kv" (a key-value store), "counter", "nfs" (the paper's NFS
// service), and "null" (the §5 null server).
func Apps() []string { return registry.Names() }

// EncodeOp translates command-line words into an operation for the named
// application — e.g. EncodeOp("kv", "put", "greeting", "hello"). It fails
// for apps registered without a CLI encoding.
func EncodeOp(app string, args ...string) ([]byte, error) {
	return registry.EncodeOp(app, args)
}

// AppUsage returns the one-line CLI synopsis for the named app, or "".
func AppUsage(app string) string {
	e, ok := registry.Lookup(app)
	if !ok {
		return ""
	}
	return e.Usage
}

// appFactory resolves a registered name to an internal factory.
func appFactory(name string) (func() sm.StateMachine, error) {
	return registry.Factory(name)
}
