package saebft_test

import (
	"context"
	"fmt"
	"log"

	"repro/saebft"
)

// ExampleNewCluster brings up the paper's separated architecture — 3f+1
// agreement replicas ordering requests, 2g+1 execution replicas running the
// application — on the deterministic simulated transport and performs one
// certified round trip.
func ExampleNewCluster() {
	cluster, err := saebft.NewCluster(
		saebft.WithMode(saebft.ModeSeparate),
		saebft.WithApp("kv"),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := cluster.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client := cluster.Client()
	put, _ := saebft.EncodeOp("kv", "put", "greeting", "hello")
	reply, err := client.Invoke(ctx, put)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(reply))

	get, _ := saebft.EncodeOp("kv", "get", "greeting")
	reply, err = client.Invoke(ctx, get)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(reply))
	// Output:
	// OK
	// hello
}

// ExampleClient_InvokeAsync pipelines several operations through one handle:
// each logical client keeps one request outstanding, so up to WithClients
// invocations overlap.
func ExampleClient_InvokeAsync() {
	cluster, err := saebft.NewCluster(
		saebft.WithApp("counter"),
		saebft.WithClients(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := cluster.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client := cluster.Client()
	var pending []<-chan saebft.Result
	for i := 0; i < 4; i++ {
		pending = append(pending, client.InvokeAsync(ctx, []byte("inc")))
	}
	done := 0
	for _, ch := range pending {
		res := <-ch
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		done++
	}
	fmt.Printf("%d increments certified\n", done)

	reply, err := client.Invoke(ctx, []byte("get"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(reply))
	// Output:
	// 4 increments certified
	// 4
}

// ExampleWithTLS runs a cluster over real TCP sockets with mutual TLS on
// every link: an ephemeral cluster CA and per-node certificates are minted
// in memory at Start, and every connection authenticates both peers before
// any protocol byte is parsed. Multi-process deployments use
// `saebft-keygen -tls` / Config.GenerateTLS for the same thing with
// on-disk material (see docs/DEPLOYMENT.md).
func ExampleWithTLS() {
	cluster, err := saebft.NewCluster(
		saebft.WithApp("kv"),
		saebft.WithTransport(saebft.TCPTransport()),
		saebft.WithTLS(saebft.TLSConfig{Ephemeral: true}),
		saebft.WithThresholdBits(512), // small keys keep the example fast
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := cluster.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	put, _ := saebft.EncodeOp("kv", "put", "link", "authenticated")
	reply, err := cluster.Client().Invoke(ctx, put)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(reply))

	stats, err := cluster.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mutual TLS:", stats.Link.Handshakes > 0)
	// Output:
	// OK
	// mutual TLS: true
}
