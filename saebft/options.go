package saebft

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sm"
	"repro/internal/storage"
	"repro/internal/types"
)

// options accumulates the functional-option state for NewCluster.
type options struct {
	mode          Mode
	replyMode     ReplyMode
	replyModeSet  bool
	f, g, h       int
	clients       int
	appName       string
	appFactory    func() sm.StateMachine
	batchSize     int
	batchBytes    int
	batchWait     time.Duration
	pipeline      int
	clientBatch   clientBatching
	macRequests   bool
	macOrders     bool
	crypto        CryptoConfig
	directReply   bool
	thresholdBits int
	ckptInterval  int
	storage       StorageConfig
	seed          string
	netSeed       int64
	invokeTimeout time.Duration
	readTimeout   time.Duration
	transport     Transport
	tls           TLSConfig
	obsOff        bool
	metricsAddr   string

	// obsReg and obsTrace are built by fillDefaults (unless observability
	// is disabled) and shared by every layer of the cluster.
	obsReg   *obs.Registry
	obsTrace *obs.Tracer
}

// Option configures NewCluster.
type Option func(*options)

// WithMode selects the replication architecture. Default: ModeSeparate.
func WithMode(m Mode) Option { return func(o *options) { o.mode = m } }

// WithFaults sets the tolerated fault counts: f for agreement (3f+1
// replicas), g for execution (2g+1), h for the firewall ((h+1)² filters,
// firewall mode only). Zero values keep the defaults (1,1,1).
func WithFaults(f, g, h int) Option {
	return func(o *options) { o.f, o.g, o.h = f, g, h }
}

// WithClients sets how many logical paper-model clients back the handle
// returned by Cluster.Client. Each logical client keeps one request
// outstanding (§2), so this is the handle's maximum pipelining depth.
// Default: 4.
func WithClients(n int) Option { return func(o *options) { o.clients = n } }

// WithApp selects a registered application by name ("kv", "counter",
// "nfs", "null", or anything added via RegisterApp). Default: "kv".
func WithApp(name string) Option { return func(o *options) { o.appName = name } }

// WithAppFactory supplies a custom state-machine factory directly; the
// factory is called once per hosting replica. Overrides WithApp.
func WithAppFactory(f func() StateMachine) Option {
	return func(o *options) {
		if f == nil {
			o.appFactory = nil
			return
		}
		o.appFactory = func() sm.StateMachine { return f() }
	}
}

// WithReplyMode selects the reply-certificate scheme. Default: quorum
// (forced to threshold in firewall mode, quorum in BASE mode).
func WithReplyMode(r ReplyMode) Option {
	return func(o *options) { o.replyMode = r; o.replyModeSet = true }
}

// WithBatching sets the agreement batch size and the maximum wait to fill a
// batch before ordering it anyway. Zero values keep the defaults.
func WithBatching(size int, wait time.Duration) Option {
	return func(o *options) { o.batchSize = size; o.batchWait = wait }
}

// WithBatchBytes bounds the request-body bytes the agreement primary packs
// into one ordered batch — the byte-level companion of WithBatching, which
// matters once batching clients submit large multi-op requests. Zero keeps
// the default (256 KiB).
func WithBatchBytes(n int) Option { return func(o *options) { o.batchBytes = n } }

// WithClientBatching turns on client-side operation batching: concurrent
// Invoke/InvokeAsync calls on the cluster's handle are coalesced into
// multi-op requests of at most maxOps operations or maxBytes of bodies,
// and a partial batch is flushed after flushInterval. One agreement slot,
// one execution, and one reply certificate then amortize over the whole
// batch. A single operation larger than maxBytes passes through on its
// own. Zero values take the defaults (16 ops, 1 MiB, 200µs).
//
// Batching changes throughput, not semantics: every operation still gets
// its own certified reply, and unrelated operations never see each other.
func WithClientBatching(maxOps, maxBytes int, flushInterval time.Duration) Option {
	return func(o *options) {
		o.clientBatch.enabled = true
		o.clientBatch.maxOps = maxOps
		o.clientBatch.maxBytes = maxBytes
		o.clientBatch.flush = flushInterval
	}
}

// WithAdaptivePipeline toggles the latency-driven controller that widens
// and narrows how many batches the handle keeps in flight (between 1 and
// WithClients). On by default when client batching is enabled; turning it
// off pins the dispatch width to WithClients. No effect without
// WithClientBatching.
func WithAdaptivePipeline(on bool) Option {
	return func(o *options) {
		o.clientBatch.adaptive = on
		o.clientBatch.adaptSet = true
	}
}

// WithPipeline bounds how many agreement certificates each message queue
// keeps in flight toward the execution cluster. Zero keeps the default.
func WithPipeline(n int) Option { return func(o *options) { o.pipeline = n } }

// WithMACs switches request and/or order authentication from signatures to
// MAC vectors (the paper's fast path).
func WithMACs(requests, orders bool) Option {
	return func(o *options) { o.macRequests = requests; o.macOrders = orders }
}

// CryptoMode selects how agreement-cluster votes are authenticated.
type CryptoMode int

const (
	// CryptoEd25519 (the default) signs every agreement vote. Slowest,
	// but every message is transferable and independently auditable.
	CryptoEd25519 CryptoMode = iota
	// CryptoMAC authenticates the three-phase votes (pre-prepare, prepare,
	// commit) with pairwise-MAC authenticator vectors — the Castro-Liskov
	// fast path for the traffic that dominates the hot loop. View changes,
	// new views, and checkpoint-stability proofs remain Ed25519-signed
	// regardless: those certificates are shown to parties beyond their
	// original destinations, which MAC vectors cannot support (the type
	// system enforces the split; see auth.TransferScheme). Trade-off: a
	// Byzantine replica can craft a vector whose slots verify for some
	// receivers and not others, which costs at most liveness (an extra
	// view change), never safety.
	CryptoMAC
)

// CryptoConfig tunes the hot-path cryptography of the agreement cluster.
type CryptoConfig struct {
	// Mode selects signature or MAC authentication for agreement votes.
	Mode CryptoMode
	// VerifyWorkers sizes the bounded worker pool that batch certificate
	// checks (client requests in a pre-prepare, order/commit certificates)
	// fan out over. The pool joins before any protocol state advances, so
	// results — and simulated runs — stay deterministic. 0 or 1 verifies
	// inline.
	VerifyWorkers int
}

// WithCrypto configures agreement-vote authentication and parallel
// certificate verification. The zero config keeps today's behavior:
// Ed25519 votes, inline verification.
func WithCrypto(c CryptoConfig) Option { return func(o *options) { o.crypto = c } }

// WithDirectReply lets executors send reply shares straight to clients
// (§3.1.3 optimization; ignored behind the firewall).
func WithDirectReply(on bool) Option { return func(o *options) { o.directReply = on } }

// WithThresholdBits sizes the threshold-RSA modulus. Small keys (512) keep
// tests fast; benchmarks use 1024+. Zero keeps the default.
func WithThresholdBits(bits int) Option { return func(o *options) { o.thresholdBits = bits } }

// WithCheckpointInterval sets how many sequence numbers pass between
// protocol checkpoints in both clusters. Smaller intervals mean tighter
// recovery points (and more frequent fsyncs of checkpoint files) at the
// cost of more checkpoint traffic. Zero keeps the default (64).
func WithCheckpointInterval(n int) Option { return func(o *options) { o.ckptInterval = n } }

// FsyncPolicy selects when durable-storage writes reach stable media.
type FsyncPolicy int

const (
	// FsyncBatched (the default) groups all WAL records of one delivery
	// burst under a single fsync, issued before any of the burst's
	// replies leave the node — durability at amortized cost.
	FsyncBatched FsyncPolicy = iota
	// FsyncEveryRecord fsyncs each appended record individually.
	FsyncEveryRecord
	// FsyncNone never forces media writes: state survives process
	// restarts (the OS page cache persists) but not power loss.
	// Benchmark use.
	FsyncNone
)

// StorageConfig configures the durable storage subsystem: a per-node
// segmented write-ahead log plus an atomic checkpoint store under
// <DataDir>/node-<id>. A cluster started over a directory written by a
// previous incarnation recovers: each node restores its newest stable
// checkpoint (after re-verifying the stored quorum attestations), replays
// its WAL tail through the normal execute path, and catches up from peers
// for anything newer — so even kill -9 of every node at once loses no
// acknowledged operation.
type StorageConfig struct {
	// DataDir roots the per-node stores. Required; the zero config
	// disables storage.
	DataDir string
	// SegmentBytes rotates WAL segments at this size (default 4 MiB).
	SegmentBytes int
	// RetainCheckpoints keeps the newest K stable checkpoints per node
	// (default 2).
	RetainCheckpoints int
	// Fsync selects the media-write policy (default FsyncBatched).
	Fsync FsyncPolicy
	// VolatileVotes disables agreement-side voting-state durability. By
	// default agreement replicas log (and sync) every pre-prepare,
	// prepare, commit, prepared certificate, and view transition before
	// sending the corresponding message, so even a single replica that
	// crashes and restarts under a simultaneously-Byzantine primary can
	// never be induced to send a conflicting vote, and recovers into the
	// correct view with its prepared evidence intact. Turning this on
	// trades that guarantee for fewer WAL syncs (committed batches and
	// checkpoints stay durable; full-cluster restarts stay safe).
	// Benchmark use.
	VolatileVotes bool
}

// WithStorage enables durable storage for every node the cluster runs in
// this process. See StorageConfig; WithDataDir is the common shorthand.
func WithStorage(cfg StorageConfig) Option { return func(o *options) { o.storage = cfg } }

// WithDataDir enables durable storage with default tuning: every node
// persists its write-ahead log and stable checkpoints under
// <path>/node-<id>, and Start recovers from them after a restart.
func WithDataDir(path string) Option {
	return func(o *options) { o.storage = StorageConfig{DataDir: path} }
}

// WithSeed sets the deterministic key-material seed (and, on the simulated
// transport, the network schedule seed via its low bits).
func WithSeed(seed string) Option { return func(o *options) { o.seed = seed } }

// WithNetSeed sets the simulated network's schedule seed independently of
// the key-material seed.
func WithNetSeed(seed int64) Option { return func(o *options) { o.netSeed = seed } }

// WithInvokeTimeout sets the default per-request timeout applied when the
// invoking context has no earlier deadline. On the simulated transport the
// duration is interpreted in virtual time. Default: 30s.
func WithInvokeTimeout(d time.Duration) Option {
	return func(o *options) { o.invokeTimeout = d }
}

// WithReadTimeout bounds each certified-read probe (one ReadCertified call
// makes up to three before falling back to full agreement). On the
// simulated transport the duration is interpreted in virtual time. Zero
// defaults to a quarter of the invoke timeout: a probe is a single round
// trip to the execution replicas, so it should give up — and let the
// fallback preserve availability — much sooner than an agreement round
// would.
func WithReadTimeout(d time.Duration) Option {
	return func(o *options) { o.readTimeout = d }
}

// WithTransport selects how the cluster's nodes communicate. Default:
// SimTransport().
func WithTransport(t Transport) Option { return func(o *options) { o.transport = t } }

// WithObservability toggles the cluster's metrics registry and trace ring
// (on by default). Every layer records into them — agreement phase
// latencies, execution apply lag, WAL fsync cost, link counters, client
// pipeline state — behind lock-free atomics; turning them off is for
// quantifying that overhead (the bench suite does), not for production.
func WithObservability(on bool) Option { return func(o *options) { o.obsOff = !on } }

// WithMetricsAddr serves the cluster's ops HTTP endpoint on addr once
// Start succeeds: Prometheus text on /metrics, the per-operation trace
// ring on /debug/trace, and the standard pprof handlers under
// /debug/pprof/. Pass "127.0.0.1:0" to let the kernel pick a port
// (Cluster.OpsAddr reports it). Implies observability.
func WithMetricsAddr(addr string) Option {
	return func(o *options) { o.metricsAddr = addr; o.obsOff = false }
}

func (o *options) fillDefaults() {
	if o.clients == 0 {
		o.clients = 4
	}
	if o.invokeTimeout == 0 {
		o.invokeTimeout = 30 * time.Second
	}
	if o.transport == nil {
		o.transport = SimTransport()
	}
	if o.appName == "" {
		o.appName = "kv"
	}
	if !o.obsOff {
		o.obsReg = obs.NewRegistry()
		o.obsTrace = obs.NewTracer(obs.DefaultTraceCap)
	}
}

// coreOptions lowers the public options to the internal composition layer.
func (o *options) coreOptions() (core.Options, error) {
	app := o.appFactory
	if app == nil {
		f, err := appFactory(o.appName)
		if err != nil {
			return core.Options{}, err
		}
		app = f
	}
	opts := core.Options{
		F:                  o.f,
		G:                  o.g,
		H:                  o.h,
		Clients:            o.clients,
		Mode:               o.mode.coreMode(),
		MACRequests:        o.macRequests,
		MACOrders:          o.macOrders,
		MACAgreement:       o.crypto.Mode == CryptoMAC,
		VerifyWorkers:      o.crypto.VerifyWorkers,
		DirectReply:        o.directReply,
		BatchSize:          o.batchSize,
		BatchBytes:         o.batchBytes,
		Pipeline:           o.pipeline,
		BatchWait:          types.Time(o.batchWait.Nanoseconds()),
		CheckpointInterval: types.SeqNum(o.ckptInterval),
		ThresholdBits:      o.thresholdBits,
		Seed:               o.seed,
		NetSeed:            o.netSeed,
		App:                app,
		Obs:                o.obsReg,
		Trace:              o.obsTrace,
	}
	if o.storage.DataDir != "" {
		opts.DataDir = o.storage.DataDir
		opts.StorageOptions = o.storage.lower()
		opts.VolatileVotes = o.storage.VolatileVotes
	}
	if o.replyModeSet {
		opts.ReplyMode = o.replyMode.coreMode()
	}
	return opts, nil
}

// lower converts the public storage knobs to the internal options.
func (c StorageConfig) lower() storage.Options {
	opts := storage.Options{
		SegmentBytes:      c.SegmentBytes,
		RetainCheckpoints: c.RetainCheckpoints,
	}
	switch c.Fsync {
	case FsyncEveryRecord:
		opts.Fsync = storage.FsyncAlways
	case FsyncNone:
		opts.Fsync = storage.FsyncNever
	default:
		opts.Fsync = storage.FsyncBatch
	}
	return opts
}
