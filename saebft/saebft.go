package saebft

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/replycert"
)

// Mode selects the replication architecture (§5.2 of the paper).
type Mode int

// Architectures under comparison.
const (
	// ModeSeparate splits agreement (3f+1 replicas) from execution
	// (2g+1 replicas) — the paper's headline architecture, Figure 1(b).
	ModeSeparate Mode = iota
	// ModeBase is the traditional coupled architecture: 3f+1 replicas
	// both agree and execute (Figure 1a).
	ModeBase
	// ModeFirewall is ModeSeparate plus the (h+1)² privacy-firewall grid
	// with sealed request/reply bodies (Figure 2c).
	ModeFirewall
)

// String returns the config-file spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeBase:
		return "base"
	case ModeSeparate:
		return "separate"
	case ModeFirewall:
		return "firewall"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses a config-file mode name. The empty string means
// ModeSeparate.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "base":
		return ModeBase, nil
	case "separate", "":
		return ModeSeparate, nil
	case "firewall":
		return ModeFirewall, nil
	default:
		return 0, fmt.Errorf("saebft: unknown mode %q", s)
	}
}

func (m Mode) coreMode() core.Mode {
	switch m {
	case ModeBase:
		return core.ModeBASE
	case ModeFirewall:
		return core.ModeFirewall
	default:
		return core.ModeSeparate
	}
}

// ReplyMode selects how clients authenticate reply certificates (§3.1.2).
type ReplyMode int

const (
	// ReplyQuorum accepts g+1 matching MAC-authenticated replies.
	ReplyQuorum ReplyMode = iota
	// ReplyThreshold accepts a single (g+1)-of-(2g+1) threshold RSA
	// signature; certificates are byte-identical regardless of which
	// correct executors answered (required behind the firewall).
	ReplyThreshold
)

// String returns the config-file spelling of the reply mode.
func (r ReplyMode) String() string {
	if r == ReplyThreshold {
		return "threshold"
	}
	return "quorum"
}

// ParseReplyMode parses a config-file reply-mode name. The empty string
// means ReplyQuorum.
func ParseReplyMode(s string) (ReplyMode, error) {
	switch s {
	case "quorum", "":
		return ReplyQuorum, nil
	case "threshold":
		return ReplyThreshold, nil
	default:
		return 0, fmt.Errorf("saebft: unknown reply mode %q", s)
	}
}

func (r ReplyMode) coreMode() replycert.Mode {
	if r == ReplyThreshold {
		return replycert.ModeThreshold
	}
	return replycert.ModeQuorum
}

// Result is one completed asynchronous invocation.
type Result struct {
	Reply []byte
	// Seq is the agreement sequence number the reply certified at — the
	// watermark a Session adopts so later certified reads observe this
	// write (zero when Err is non-nil).
	Seq uint64
	Err error
}

// Errors returned by the lifecycle and client surfaces.
var (
	// ErrClosed reports an operation on a closed cluster or client.
	ErrClosed = errors.New("saebft: closed")
	// ErrNotStarted reports an operation that requires Start first.
	ErrNotStarted = errors.New("saebft: cluster not started")
	// ErrTimeout reports an invocation that exceeded its timeout without
	// assembling a valid reply certificate.
	ErrTimeout = errors.New("saebft: request timed out")
	// ErrSimOnly reports a fault-injection hook invoked on a transport
	// that does not support it.
	ErrSimOnly = errors.New("saebft: operation requires the simulated transport")
)

// Info describes a built cluster's shape.
type Info struct {
	Mode       Mode
	F, G, H    int // tolerated faults: agreement, execution, firewall
	Agreement  int // number of agreement replicas (3f+1)
	Execution  int // number of execution replicas (2g+1); 0 in ModeBase
	FilterRows int // firewall rows (h+1); 0 outside ModeFirewall
	Filters    int // total filters ((h+1)²); 0 outside ModeFirewall
	Clients    int // logical clients backing one handle's pipeline
}

// Stats aggregates externally observable counters. Transport-level fields
// are populated only on the simulated transport.
type Stats struct {
	Requests    uint64 // client requests issued
	Retransmits uint64 // client retransmissions
	Replies     uint64 // certified replies accepted
	BadReplies  uint64 // reply shares/certificates clients rejected

	// Certified fast read path (always zero in ModeBase and ModeFirewall,
	// which have no read path and serve every read through agreement).
	Reads          uint64 // certified-read probes issued by this process's clients
	ReadsCertified uint64 // probes that assembled a g+1 matching quorum
	ReadMismatches uint64 // probes every executor answered without such a quorum
	BadReadReplies uint64 // read replies clients rejected (signature, membership)
	ReadsServed    uint64 // reads answered by execution replicas in this process
	ReadsRefused   uint64 // reads those replicas refused (not read-only, lagging, sealed)

	// SharesRejected counts forged shares/certificates rejected by
	// firewall filters hosted in this process (always zero outside
	// ModeFirewall).
	SharesRejected uint64

	// StorageFailures counts replicas in this process that have
	// fail-stopped on a durable-storage error (disk full, I/O failure).
	// Such a replica keeps its sockets open but stops executing; nonzero
	// here is the signal to go look at its data directory.
	StorageFailures uint64

	MessagesDelivered uint64 // sim only
	MessagesDropped   uint64 // sim only

	// Link aggregates TCP link-state counters — dials, authenticated
	// handshakes, rejects, frame/byte flow, bounded-queue drops — across
	// every endpoint this process runs (TCP transports only; all zero on
	// the simulated transport).
	Link LinkStats
}
