package saebft

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ReadBenchConfig parameterizes RunReadBench, the certified-read throughput
// sweep: the same read-only operation mix served once through the fast read
// path (ReadCertified) and once through full agreement (Invoke), so the two
// points quantify what skipping the agreement round buys. Zero-value fields
// take defaults; Short selects a CI-smoke grid.
type ReadBenchConfig struct {
	Transports []string // subset of {"sim", "tcp"}; default both
	Pipelines  []int    // WithClients widths to sweep
	Ops        int      // reads per point (all issued concurrently)
	OpSize     int      // request payload bytes
	Repeat     int      // samples per point; the best is reported
	Short      bool     // CI smoke sizing (overrides the grid fields)
}

func (c *ReadBenchConfig) fillDefaults() {
	if c.Repeat == 0 {
		c.Repeat = 1
		if c.Short {
			c.Repeat = 3
		}
	}
	if c.Short {
		c.Transports = []string{"sim", "tcp"}
		c.Pipelines = []int{8}
		c.Ops = 64
		c.OpSize = 128
		return
	}
	if len(c.Transports) == 0 {
		c.Transports = []string{"sim", "tcp"}
	}
	if len(c.Pipelines) == 0 {
		c.Pipelines = []int{1, 8}
	}
	if c.Ops == 0 {
		c.Ops = 256
	}
	if c.OpSize == 0 {
		c.OpSize = 128
	}
}

// RunReadBench measures certified-read throughput against the same workload
// served through full agreement. Every point issues cfg.Ops concurrent
// read-only null-server operations against a fresh cluster; points are keyed
// read=certified vs read=invoke, so a baseline comparison gates the fast
// path's advantage the same way the batching sweep gates its points.
func RunReadBench(cfg ReadBenchConfig) (*BenchReport, error) {
	cfg.fillDefaults()
	rep := &BenchReport{
		Name:          "certified-reads",
		SchemaVersion: 1,
		GoVersion:     runtime.Version(),
		Short:         cfg.Short,
		CreatedUnix:   time.Now().Unix(),
	}
	for _, tr := range cfg.Transports {
		for _, pipe := range cfg.Pipelines {
			for _, mode := range []string{"certified", "invoke"} {
				var best BenchPoint
				for try := 0; try < cfg.Repeat; try++ {
					pt, err := runReadPoint(tr, pipe, cfg.Ops, cfg.OpSize, mode)
					if err != nil {
						return nil, fmt.Errorf("saebft: read bench point %s/p%d/read=%s: %w", tr, pipe, mode, err)
					}
					if try == 0 || pt.Throughput > best.Throughput {
						best = pt
					}
				}
				rep.Points = append(rep.Points, best)
			}
		}
	}
	return rep, nil
}

// startBenchCluster builds and starts a cluster, retrying a couple of times
// on listener port collisions: free ports are reserved by listen-and-close
// before the nodes bind them, so back-to-back TCP points can race another
// socket onto a reserved port.
func startBenchCluster(opts []Option) (*Cluster, error) {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		var c *Cluster
		c, err = NewCluster(opts...)
		if err != nil {
			return nil, err
		}
		err = c.Start(context.Background())
		if err == nil {
			return c, nil
		}
		c.Close()
		if !errors.Is(err, syscall.EADDRINUSE) {
			return nil, err
		}
	}
	return nil, err
}

func runReadPoint(transport string, pipeline, ops, opSize int, mode string) (BenchPoint, error) {
	pt := BenchPoint{
		Transport: transport, Pipeline: pipeline,
		Ops: ops, OpSize: opSize, Read: mode,
	}
	opts := []Option{
		WithApp("null"),
		WithClients(pipeline),
		WithSeed("bench-reads"),
		WithInvokeTimeout(2 * time.Minute),
	}
	switch transport {
	case "sim":
		opts = append(opts, WithTransport(SimTransport()))
	case "tcp":
		opts = append(opts, WithTransport(TCPTransport()))
	default:
		return pt, fmt.Errorf("unknown transport %q", transport)
	}
	c, err := startBenchCluster(opts)
	if err != nil {
		return pt, err
	}
	defer c.Close()
	cl := c.Client()
	ctx := context.Background()
	op := make([]byte, opSize)
	for i := range op {
		op[i] = byte(i)
	}
	// One warm-up write settles connections and the view, and gives the
	// handle's session a non-zero watermark — so the certified points also
	// pay the read-your-writes floor check, not a degenerate floor of zero.
	if _, err := cl.Invoke(ctx, op); err != nil {
		return pt, err
	}
	serve := cl.Invoke
	if mode == "certified" {
		serve = cl.ReadCertified
	}
	virtStart, _ := c.VirtualTime()
	wallStart := time.Now()
	var latSum atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, ops)
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := serve(ctx, op); err != nil {
				errc <- fmt.Errorf("read %d: %w", i, err)
				return
			}
			latSum.Add(int64(time.Since(wallStart)))
		}(i)
	}
	wg.Wait()
	wall := time.Since(wallStart)
	select {
	case err := <-errc:
		return pt, err
	default:
	}
	if mode == "certified" {
		// The point claims fast-path throughput; if any read quietly fell
		// back to agreement the number would be a lie, so fail loudly.
		if cs := cl.ClientStats(); cs.ReadFallbacks > 0 || cs.ReadsCertified != uint64(ops) {
			return pt, fmt.Errorf("certified point degraded: %d/%d reads certified, %d fell back",
				cs.ReadsCertified, ops, cs.ReadFallbacks)
		}
	}
	pt.WallMs = float64(wall) / 1e6
	pt.MeanLatMs = float64(latSum.Load()) / float64(ops) / 1e6
	elapsed := wall
	if transport == "sim" {
		virtEnd, err := c.VirtualTime()
		if err != nil {
			return pt, err
		}
		virt := virtEnd - virtStart
		pt.VirtualMs = float64(virt) / 1e6
		elapsed = virt
	}
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	pt.Throughput = float64(ops) / elapsed.Seconds()
	return pt, nil
}
