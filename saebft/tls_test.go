package saebft

import (
	"bytes"
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"
)

// TestTLSLoopbackCluster runs the full separated topology — 4 agreement
// replicas, 3 execution replicas, clients — over mutual-TLS loopback TCP
// and proves certified replies verify end-to-end across authenticated
// links. This is the CI proof behind docs/DEPLOYMENT.md.
func TestTLSLoopbackCluster(t *testing.T) {
	c, err := NewCluster(
		WithMode(ModeSeparate),
		WithApp("kv"),
		WithClients(2),
		WithTransport(TCPTransport()),
		WithTLS(TLSConfig{Ephemeral: true}),
		WithThresholdBits(512),
		WithInvokeTimeout(20*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	cl := c.Client()
	put, _ := EncodeOp("kv", "put", "channel", "mTLS")
	if reply, err := cl.Invoke(ctx, put); err != nil || string(reply) != "OK" {
		t.Fatalf("put over mTLS: %q, %v", reply, err)
	}
	get, _ := EncodeOp("kv", "get", "channel")
	reply, err := cl.Invoke(ctx, get)
	if err != nil {
		t.Fatalf("get over mTLS: %v", err)
	}
	if !bytes.Equal(reply, []byte("mTLS")) {
		t.Fatalf("get reply = %q, want mTLS", reply)
	}

	s, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Link.Handshakes == 0 {
		t.Error("no authenticated handshakes recorded on a TLS cluster")
	}
	if s.Link.AuthRejects != 0 || s.Link.HandshakeFailures != 0 {
		t.Errorf("honest cluster recorded rejects: %+v", s.Link)
	}
	if s.Replies == 0 {
		t.Error("no certified replies recorded")
	}
}

// TestTLSRequiresTCPTransport: securing the simulated transport is a
// configuration error, not a silent no-op.
func TestTLSRequiresTCPTransport(t *testing.T) {
	if _, err := NewCluster(WithTLS(TLSConfig{Ephemeral: true})); err == nil {
		t.Fatal("WithTLS on the simulated transport did not error")
	}
	if _, err := NewCluster(
		WithTransport(TCPTransport()),
		WithTLS(TLSConfig{Ephemeral: true, Dir: "certs"}),
	); err == nil {
		t.Fatal("TLSConfig with both Dir and Ephemeral did not error")
	}
}

// freePortConfig rewrites every address in cfg to a kernel-assigned free
// loopback port so parallel test runs cannot collide.
func freePortConfig(t *testing.T, cfg *Config) {
	t.Helper()
	for k := range cfg.d.Addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cfg.d.Addrs[k] = ln.Addr().String()
		ln.Close()
	}
}

// TestTLSConfigDeployment exercises the full multi-process TLS path the
// cmd tools wrap: keygen-style cert minting into a directory, config
// round-trip through disk, per-node startup over mutual TLS, a dialed
// client, a node kill + restart mid-stream (reconnect proof), and
// rejection of impostor material.
func TestTLSConfigDeployment(t *testing.T) {
	dir := t.TempDir()
	cfg, err := GenerateConfig(DeployParams{
		Mode:          ModeSeparate,
		App:           "counter",
		Seed:          "saebft-tls-test",
		ThresholdBits: 512,
		TLSDir:        filepath.Join(dir, "certs"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.TLSEnabled() {
		t.Fatal("GenerateConfig with TLSDir did not record TLS material")
	}
	freePortConfig(t, cfg)

	// Round-trip through disk like a real deployment's config.
	path := filepath.Join(dir, "cluster.json")
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.TLSEnabled() {
		t.Fatal("TLS section lost in the config round-trip")
	}
	if ca, cert, key, ok := loaded.TLSPaths(0); !ok || ca == "" || cert == "" || key == "" {
		t.Fatalf("TLSPaths(0) = %q %q %q %v", ca, cert, key, ok)
	}

	ctx := context.Background()
	nodes, err := loaded.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	running := make(map[int]*Node)
	defer func() {
		for _, n := range running {
			n.Close()
		}
	}()
	var execID int
	for _, ni := range nodes {
		if ni.Role == "client" {
			continue
		}
		if ni.Role == "execution" {
			execID = ni.ID
		}
		n, err := NewNode(loaded, ni.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(ctx); err != nil {
			t.Fatalf("starting %s node %d: %v", ni.Role, ni.ID, err)
		}
		if !n.Secure() {
			t.Fatalf("node %d came up without TLS despite the config", ni.ID)
		}
		running[ni.ID] = n
	}

	cl, err := DialConfig(loaded, DialTimeout(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if reply, err := cl.Invoke(ctx, []byte("inc")); err != nil || string(reply) != "1" {
		t.Fatalf("inc over mTLS: %q, %v", reply, err)
	}

	// Kill one execution replica and keep working (g+1 of 2g+1 replies
	// still certify), then restart it over the same TLS material and keep
	// working — peers reconnect through the authenticated handshake path.
	running[execID].Close()
	delete(running, execID)
	if reply, err := cl.Invoke(ctx, []byte("inc")); err != nil || string(reply) != "2" {
		t.Fatalf("inc with one executor down: %q, %v", reply, err)
	}
	restarted, err := NewNode(loaded, execID)
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.Start(ctx); err != nil {
		t.Fatalf("restarting executor %d: %v", execID, err)
	}
	running[execID] = restarted
	if reply, err := cl.Invoke(ctx, []byte("inc")); err != nil || string(reply) != "3" {
		t.Fatalf("inc after executor restart: %q, %v", reply, err)
	}

	cs, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Link.Handshakes == 0 {
		t.Error("dialed handle recorded no authenticated handshakes")
	}
	// Release the client identities (and their listen ports) so the
	// impostor dials below can occupy them.
	cl.Close()

	// Impostor 1: a certificate bound to a different identity is refused
	// locally before it ever touches the network.
	ca, cert0, key0, _ := loaded.TLSPaths(0)
	cids, err := loaded.ClientIDs()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DialConfig(loaded, DialClients(cids[0]), DialTLS(ca, cert0, key0)); err == nil {
		t.Fatal("dialing with node 0's certificate as a client identity did not error")
	}

	// Impostor 2: material from a different cluster CA. The nodes must
	// refuse the handshake, so no operation can complete.
	foreignDir := filepath.Join(dir, "foreign-certs")
	foreign, err := GenerateConfig(DeployParams{
		Mode:          ModeSeparate,
		App:           "counter",
		Seed:          "saebft-tls-test", // same seed: protocol keys match, TLS CA does not
		ThresholdBits: 512,
		TLSDir:        foreignDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = foreign
	fca, fcert, fkey, _ := foreign.TLSPaths(cids[0])
	_ = fca
	imp, err := DialConfig(loaded,
		DialClients(cids[0]),
		DialTLS(ca, fcert, fkey), // trusts the real CA, presents a foreign cert
		DialTimeout(2*time.Second))
	if err != nil {
		t.Fatalf("impostor dial construction failed early (want rejection at handshake): %v", err)
	}
	defer imp.Close()
	if _, err := imp.Invoke(ctx, []byte("inc")); err == nil {
		t.Fatal("an impostor with a foreign-CA certificate completed an operation")
	}
	is, err := imp.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if is.Replies != 0 {
		t.Fatal("impostor assembled a certified reply")
	}
}
