package saebft

import (
	"fmt"

	"repro/internal/apps/nfs"
	"repro/internal/bench"
	"repro/internal/core"
)

// BenchScale selects how long the evaluation benchmarks run.
type BenchScale int

const (
	// BenchQuick is sized for CI and demos (seconds of wall time).
	BenchQuick BenchScale = iota
	// BenchFull approaches the paper's run lengths (minutes), with
	// 1024-bit threshold keys.
	BenchFull
)

func (s BenchScale) scale() bench.Scale {
	if s == BenchFull {
		return bench.FullScale()
	}
	return bench.QuickScale()
}

// BenchFigures lists the paper-evaluation figures RunBenchFigure accepts.
func BenchFigures() []string { return []string{"3", "4", "5", "6", "7"} }

// RunBenchFigure regenerates one table/figure of the paper's evaluation
// (§5) on the simulated cluster with compute-time accounting, returning its
// rendered text:
//
//	"3" — null-server latency table
//	"4" — analytic relative-cost model
//	"5" — response time vs load and bundle size
//	"6" — Andrew-N phase times
//	"7" — Andrew-N with failures
func RunBenchFigure(figure string, scale BenchScale) (string, error) {
	sc := scale.scale()
	switch figure {
	case "3":
		out, _, err := bench.Figure3(sc)
		return out, err
	case "4":
		return bench.Figure4(), nil
	case "5":
		out, _, err := bench.Figure5(sc)
		return out, err
	case "6":
		out, _, err := bench.Figure6(sc)
		return out, err
	case "7":
		out, _, err := bench.Figure7(sc)
		return out, err
	default:
		return "", fmt.Errorf("saebft: unknown figure %q (have %v)", figure, BenchFigures())
	}
}

// AndrewConfig sizes the paper's modified Andrew benchmark (§5.4): each of
// N iterations creates Dirs directories of FilesPerDir files of FileSize
// bytes, then stats, reads, and lists them back through the replicated NFS
// service.
type AndrewConfig struct {
	N           int
	Dirs        int
	FilesPerDir int
	FileSize    int
}

// AndrewRun is one configuration's result: per-phase and total virtual
// milliseconds.
type AndrewRun struct {
	Label   string
	PhaseMs [5]float64
	TotalMs float64
}

// RunAndrewComparison runs Andrew-N against the replicated NFS service in
// three configurations — unreplicated, the coupled BASE baseline, and the
// full privacy-firewall architecture — reproducing the comparison of
// Figure 6. thresholdBits sizes the firewall's threshold keys (512 is
// quick; 1024 matches the paper).
func RunAndrewComparison(cfg AndrewConfig, thresholdBits int) ([]AndrewRun, error) {
	if thresholdBits == 0 {
		thresholdBits = 512
	}
	// Default each zero field independently so a partially-filled config
	// still does real work instead of benchmarking nothing.
	def := bench.DefaultAndrew(1)
	bcfg := bench.AndrewConfig{N: cfg.N, Dirs: cfg.Dirs, FilesPerDir: cfg.FilesPerDir, FileSize: cfg.FileSize}
	if bcfg.N == 0 {
		bcfg.N = def.N
	}
	if bcfg.Dirs == 0 {
		bcfg.Dirs = def.Dirs
	}
	if bcfg.FilesPerDir == 0 {
		bcfg.FilesPerDir = def.FilesPerDir
	}
	if bcfg.FileSize == 0 {
		bcfg.FileSize = def.FileSize
	}
	var out []AndrewRun
	norep, err := bench.RunAndrew("No Replication", bench.NewNoRepInvoker(nfs.New()), bcfg)
	if err != nil {
		return nil, err
	}
	out = append(out, toAndrewRun(norep))
	for _, c := range []struct {
		label string
		mode  core.Mode
	}{
		{"BASE", core.ModeBASE},
		{"Firewall", core.ModeFirewall},
	} {
		res, err := bench.RunAndrewOnCluster(c.label, bench.AndrewClusterOptions(c.mode, thresholdBits), bcfg, bench.FaultNone)
		if err != nil {
			return nil, err
		}
		out = append(out, toAndrewRun(res))
	}
	return out, nil
}

func toAndrewRun(r bench.AndrewResult) AndrewRun {
	run := AndrewRun{Label: r.Label, TotalMs: float64(r.Total) / 1e6}
	for i, p := range r.Phases {
		run.PhaseMs[i] = float64(p) / 1e6
	}
	return run
}
