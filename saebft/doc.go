// Package saebft is the public embedding API for the separated-BFT system
// reproduced from "Separating Agreement from Execution for Byzantine Fault
// Tolerant Services" (Yin, Martin, Venkataramani, Alvisi & Dahlin, SOSP
// 2003), grown toward a deployable replicated service.
//
// It exposes the three architectures the paper compares — the coupled BASE
// baseline, the separated 3f+1 agreement / 2g+1 execution architecture, and
// the privacy-firewall variant — behind one constructor with functional
// options, a context-aware lifecycle, and a pipelined client handle:
//
//	cluster, err := saebft.NewCluster(
//		saebft.WithMode(saebft.ModeSeparate),
//		saebft.WithApp("kv"),
//		saebft.WithClients(8),
//	)
//	if err != nil { ... }
//	if err := cluster.Start(ctx); err != nil { ... }
//	defer cluster.Close()
//
//	client := cluster.Client()
//	reply, err := client.Invoke(ctx, op)          // synchronous
//	resc := client.InvokeAsync(ctx, op)           // pipelined
//
// Every reply is backed by a verified reply certificate: g+1 matching
// execution-replica replies, or a single (g+1)-of-(2g+1) threshold RSA
// signature (WithReplyMode(ReplyThreshold)).
//
// # Transports
//
// The same constructor drives either transport. SimTransport (the default)
// runs every node in-process on a deterministic simulated network with a
// virtual clock and fault injection — crashes (Cluster.CrashAgreement,
// Cluster.CrashExec), Byzantine executors (Cluster.ByzantineExec), and
// message taps (Cluster.Tap). TCPTransport runs the same nodes over real
// loopback TCP sockets, the identical wiring the multi-process tools use.
//
// # Secure links
//
// TCP links can run over mutual TLS with authenticated identity binding:
// WithTLS(TLSConfig{...}) for in-process clusters, `saebft-keygen -tls` /
// Config.GenerateTLS for multi-process deployments. Every connection is
// then TLS 1.3, both peers present cluster-CA-signed certificates, and a
// peer whose certificate identity does not match the node identity it
// claims is rejected before any protocol byte is parsed. Link-state
// counters (Stats.Link, Node.LinkStats) expose dials, handshakes, rejects,
// frame flow, and bounded-queue drops for operations; the troubleshooting
// guide in docs/DEPLOYMENT.md is keyed to them.
//
// # Durability
//
// WithDataDir / WithStorage persist every node's write-ahead log and stable
// checkpoints; a cluster restarted over the same directories recovers
// without losing an acknowledged operation, even from kill -9 of every
// node at once. See StorageConfig.
//
// # Multi-process deployments
//
// GenerateConfig (or the saebft-keygen command) emits a shared deployment
// descriptor; NewNode + Node.Start runs one identity per process, and Dial
// connects a pipelined client handle. The cmd/saebft-* tools are thin
// wrappers over these. The full multi-machine walkthrough — certificates,
// systemd units, firewalls, crash recovery — lives in docs/DEPLOYMENT.md,
// and docs/ARCHITECTURE.md maps the codebase to the paper's sections.
//
// Everything under internal/ is unsupported implementation detail; this
// package is the compatibility surface.
package saebft
