package saebft

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/execnode"
	"repro/internal/firewall"
	"repro/internal/transport"
	"repro/internal/types"
)

// tcpTransport builds clusters whose nodes all live in this process but
// communicate over real loopback TCP sockets.
type tcpTransport struct {
	cfg TCPConfig
}

func (t *tcpTransport) start(b *core.Builder, o *options) (clusterRuntime, error) {
	addrs, err := pickAddrs(b.Top.AllNodes(), t.cfg.BasePort)
	if err != nil {
		return nil, err
	}
	secFor, err := o.tls.provider()
	if err != nil {
		return nil, err
	}
	topts := func(id types.NodeID) (transport.TCPOptions, error) {
		to := transport.TCPOptions{Obs: o.obsReg, ObsNode: strconv.Itoa(int(id))}
		if secFor == nil {
			return to, nil
		}
		sec, err := secFor(id)
		if err != nil {
			return transport.TCPOptions{}, fmt.Errorf("saebft: TLS material for node %v: %w", id, err)
		}
		to.Security = sec
		return to, nil
	}
	r := &tcpRuntime{quit: make(chan struct{})}
	for _, id := range serverIDs(b) {
		to, err := topts(id)
		if err != nil {
			r.close()
			return nil, err
		}
		n, err := deploy.StartBuilderNodeOpts(b, addrs, id, to)
		if err != nil {
			r.close()
			return nil, fmt.Errorf("saebft: starting node %v: %w", id, err)
		}
		n.Net.SetLogf(logfOrSilent(t.cfg.Logf))
		r.nodes = append(r.nodes, n)
	}
	for _, cid := range b.Top.Clients {
		to, err := topts(cid)
		if err != nil {
			r.close()
			return nil, err
		}
		ep, err := newTCPEndpoint(b, addrs, cid, t.cfg.Logf, to)
		if err != nil {
			r.close()
			return nil, fmt.Errorf("saebft: starting client endpoint %v: %w", cid, err)
		}
		r.eps = append(r.eps, ep)
	}
	return r, nil
}

// serverIDs lists every identity that actually runs a node, in
// deterministic order. BASE mode builds no execution replicas even though
// the topology lays out their identities.
func serverIDs(b *core.Builder) []types.NodeID {
	top := b.Top
	var ids []types.NodeID
	ids = append(ids, top.Agreement...)
	if b.Opts.Mode != core.ModeBASE {
		ids = append(ids, top.Execution...)
	}
	for _, row := range top.Filters {
		ids = append(ids, row...)
	}
	return ids
}

// pickAddrs assigns a loopback address to every identity: consecutive ports
// from basePort, or kernel-chosen free ports when basePort is zero.
func pickAddrs(ids []types.NodeID, basePort int) (map[types.NodeID]string, error) {
	addrs := make(map[types.NodeID]string, len(ids))
	for i, id := range ids {
		if basePort > 0 {
			addrs[id] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
			continue
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[id] = ln.Addr().String()
		ln.Close()
	}
	return addrs, nil
}

func logfOrSilent(logf func(string, ...interface{})) func(string, ...interface{}) {
	if logf != nil {
		return logf
	}
	return func(string, ...interface{}) {}
}

// tcpEndpoint is one logical client over TCP: a protocol-core client driven
// by its own runtime goroutine, completing invocations through an
// event-driven result channel (no polling).
type tcpEndpoint struct {
	id      types.NodeID
	cl      *core.Client
	net     *transport.TCPNet
	rt      *transport.Runtime
	results chan invokeResult
	reads   chan core.ReadOutcome
}

func newTCPEndpoint(b *core.Builder, addrs map[types.NodeID]string, id types.NodeID, logf func(string, ...interface{}), topts transport.TCPOptions) (*tcpEndpoint, error) {
	// The runtime's handler is installed after construction; the atomic
	// indirection keeps early inbound messages (dropped, retransmitted by
	// peers) from racing the installation.
	var handler atomic.Pointer[func(from types.NodeID, data []byte)]
	tcp, err := transport.NewTCPNetOpts(id, addrs, func(from types.NodeID, data []byte) {
		if h := handler.Load(); h != nil {
			(*h)(from, data)
		}
	}, topts)
	if err != nil {
		return nil, err
	}
	tcp.SetLogf(logfOrSilent(logf))
	cl, err := b.ClientNode(id, tcp.Send)
	if err != nil {
		tcp.Close()
		return nil, err
	}
	// Identities may be reused by later processes (CLI tools, restarted
	// embedders); wall-clock timestamps keep this incarnation's requests
	// above any predecessor's in the executors' exactly-once reply table.
	cl.SetTimestamp(types.Timestamp(time.Now().UnixNano()))
	ep := &tcpEndpoint{
		id:      id,
		cl:      cl,
		net:     tcp,
		results: make(chan invokeResult, 1),
		reads:   make(chan core.ReadOutcome, 1),
	}
	// The hooks fire on the runtime goroutine; capacity 1 suffices because
	// each logical client has at most one request and one read outstanding.
	cl.SetOnResult(func(body []byte, seq types.SeqNum) {
		select {
		case ep.results <- invokeResult{body: body, seq: uint64(seq)}:
		default:
		}
	})
	cl.SetOnReadDone(func(out core.ReadOutcome) {
		select {
		case ep.reads <- out:
		default:
		}
	})
	rt, h := transport.NewRuntime(cl, tcp.Now, time.Millisecond)
	handler.Store(&h)
	ep.rt = rt
	return ep, nil
}

func (ep *tcpEndpoint) close() {
	ep.rt.Close()
	ep.net.Close()
}

// tcpRuntime serves invocations over a set of TCP client endpoints. When it
// also owns server nodes (in-process TCP cluster) it tears them down on
// close; for dialed handles against an external deployment, nodes is nil.
type tcpRuntime struct {
	nodes []*deploy.RunningNode
	eps   []*tcpEndpoint
	quit  chan struct{}
	once  sync.Once
}

func (r *tcpRuntime) invoke(ctx context.Context, idx int, op []byte, timeout time.Duration) (invokeResult, error) {
	if idx < 0 || idx >= len(r.eps) {
		return invokeResult{}, fmt.Errorf("saebft: logical client %d out of range", idx)
	}
	ep := r.eps[idx]
	select {
	case <-ep.results: // clear any stale result from an abandoned request
	default:
	}
	var submitErr error
	ep.rt.Do(func(now types.Time) { submitErr = ep.cl.Submit(op, now) })
	if submitErr != nil {
		return invokeResult{}, submitErr
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	abandon := func() {
		ep.rt.Do(func(types.Time) { ep.cl.Cancel() })
		select {
		case <-ep.results: // a result may have raced the cancellation
		default:
		}
	}
	select {
	case res := <-ep.results:
		return res, nil
	case <-ctx.Done():
		abandon()
		return invokeResult{}, ctx.Err()
	case <-timer.C:
		abandon()
		return invokeResult{}, fmt.Errorf("%w after %v", ErrTimeout, timeout)
	case <-r.quit:
		return invokeResult{}, ErrClosed
	}
}

func (r *tcpRuntime) readCertified(ctx context.Context, idx int, op []byte, floor uint64, timeout time.Duration) (readAttempt, error) {
	if idx < 0 || idx >= len(r.eps) {
		return readAttempt{}, fmt.Errorf("saebft: logical client %d out of range", idx)
	}
	ep := r.eps[idx]
	select {
	case <-ep.reads: // clear any stale outcome from an abandoned read
	default:
	}
	var submitErr error
	ep.rt.Do(func(now types.Time) { submitErr = ep.cl.SubmitRead(op, types.SeqNum(floor), now) })
	if submitErr != nil {
		return readAttempt{}, submitErr
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	abandon := func() {
		ep.rt.Do(func(types.Time) { ep.cl.CancelRead() })
		select {
		case <-ep.reads: // an outcome may have raced the cancellation
		default:
		}
	}
	select {
	case out := <-ep.reads:
		return readAttemptFrom(out), nil
	case <-ctx.Done():
		abandon()
		return readAttempt{}, ctx.Err()
	case <-timer.C:
		abandon()
		return readAttempt{}, fmt.Errorf("%w after %v", ErrTimeout, timeout)
	case <-r.quit:
		return readAttempt{}, ErrClosed
	}
}

func (r *tcpRuntime) stats() (Stats, error) {
	var s Stats
	for _, ep := range r.eps {
		select {
		case <-r.quit:
			return Stats{}, ErrClosed
		default:
		}
		ep.rt.Do(func(types.Time) {
			s.Requests += ep.cl.Metrics.Requests
			s.Retransmits += ep.cl.Metrics.Retransmits
			s.Replies += ep.cl.Metrics.Replies
			s.BadReplies += ep.cl.Metrics.BadReplies
			s.Reads += ep.cl.Metrics.Reads
			s.ReadsCertified += ep.cl.Metrics.ReadsCertified
			s.ReadMismatches += ep.cl.Metrics.ReadMismatches
			s.BadReadReplies += ep.cl.Metrics.BadReadReplies
		})
	}
	// Node-hosted metrics live inside this process's nodes (in-process TCP
	// cluster); a dialed handle has no nodes and reports zero for them.
	for _, n := range r.nodes {
		select {
		case <-r.quit:
			return Stats{}, ErrClosed
		default:
		}
		n.Inspect(func(node transport.Node) {
			if f, ok := node.(*firewall.Filter); ok {
				s.SharesRejected += f.Metrics.SharesRejected
			}
			if ex, ok := node.(*execnode.Replica); ok {
				s.ReadsServed += ex.Metrics.ReadsServed
				s.ReadsRefused += ex.Metrics.ReadsRefused
			}
			if se, ok := node.(interface{ StorageErr() error }); ok && se.StorageErr() != nil {
				s.StorageFailures++
			}
		})
	}
	s.Link = r.linkSnapshot()
	return s, nil
}

// linkSnapshot folds every endpoint's and node's transport counters into
// one LinkStats. Both public stats surfaces — Client.Stats on a dialed
// handle and Cluster.Stats on an owned cluster — reach the link counters
// only through here, so the two can never drift by accumulating different
// snapshot sets per call site.
func (r *tcpRuntime) linkSnapshot() LinkStats {
	var link LinkStats
	for _, n := range r.nodes {
		link.add(n.Net.Stats())
	}
	for _, ep := range r.eps {
		link.add(ep.net.Stats())
	}
	return link
}

func (r *tcpRuntime) close() error {
	r.once.Do(func() {
		close(r.quit)
		for _, ep := range r.eps {
			ep.close()
		}
		for _, n := range r.nodes {
			n.Close() // graceful: flushes each node's durable store
		}
	})
	return nil
}

// kill tears the runtime down without flushing durable stores, simulating a
// whole-process crash (recovery tests only).
func (r *tcpRuntime) kill() {
	r.once.Do(func() {
		close(r.quit)
		for _, ep := range r.eps {
			ep.close()
		}
		for _, n := range r.nodes {
			n.Kill()
		}
	})
}
