package saebft

import (
	"fmt"
	"path/filepath"

	"repro/internal/transport"
	"repro/internal/types"
)

// TLSConfig enables mutual TLS with authenticated identity binding on every
// TCP link of an in-process cluster (WithTLS). Exactly one of Dir or
// Ephemeral must be set.
//
// Every connection between nodes (and from clients) is then TLS 1.3 with
// both sides presenting cluster-CA-signed certificates; each certificate is
// bound to one node identity, and a peer whose authenticated identity does
// not match the identity it claims is rejected before a single protocol
// byte is parsed. The simulated transport has no links and rejects WithTLS.
type TLSConfig struct {
	// Dir names a directory of PEM material as minted by
	// `saebft-keygen -tls` or Config.GenerateTLS: ca.pem plus a
	// node-<id>.pem / node-<id>-key.pem pair for every identity this
	// process runs (all of them, for an in-process cluster).
	Dir string

	// Ephemeral mints a fresh in-memory cluster CA and per-identity
	// certificates when the cluster starts; nothing touches disk. The
	// natural choice for in-process clusters and tests, where all
	// identities live in one process anyway.
	Ephemeral bool
}

func (c TLSConfig) enabled() bool { return c.Dir != "" || c.Ephemeral }

// securityProvider yields per-identity link-security material for the nodes
// and client endpoints a process runs; nil means plaintext.
type securityProvider func(id types.NodeID) (*transport.Security, error)

// provider resolves the config into a per-identity loader (or minter).
func (c TLSConfig) provider() (securityProvider, error) {
	if !c.enabled() {
		return nil, nil
	}
	if c.Dir != "" && c.Ephemeral {
		return nil, fmt.Errorf("saebft: TLSConfig sets both Dir and Ephemeral")
	}
	if c.Ephemeral {
		ca, err := transport.NewCA("saebft ephemeral cluster CA")
		if err != nil {
			return nil, err
		}
		return ca.Identity, nil
	}
	dir := c.Dir
	return func(id types.NodeID) (*transport.Security, error) {
		return transport.LoadSecurity(id,
			filepath.Join(dir, "ca.pem"),
			filepath.Join(dir, fmt.Sprintf("node-%d.pem", id)),
			filepath.Join(dir, fmt.Sprintf("node-%d-key.pem", id)))
	}, nil
}

// WithTLS runs every TCP link of the cluster over mutual TLS with
// authenticated identity binding. Requires WithTransport(TCPTransport(...));
// see TLSConfig for the material layout.
func WithTLS(cfg TLSConfig) Option { return func(o *options) { o.tls = cfg } }

// LinkStats aggregates the TCP transport's link-state counters across every
// endpoint a process runs. All counters are cumulative; the deployment and
// troubleshooting guide (docs/DEPLOYMENT.md) is keyed to them. Always zero
// on the simulated transport, which has no links.
type LinkStats struct {
	Dials             uint64 // outbound connection attempts
	DialFailures      uint64 // attempts that failed before any handshake (peer down, unroutable)
	Handshakes        uint64 // authenticated handshakes completed (both directions)
	HandshakeFailures uint64 // TLS or hello failures — wrong CA, wrong cluster, port scanners
	AuthRejects       uint64 // authenticated peer identity contradicted the identity it claimed
	Reconnects        uint64 // successful re-handshakes after a link was lost
	FramesSent        uint64
	FramesReceived    uint64
	BytesSent         uint64
	BytesReceived     uint64
	FramesDropped     uint64 // bounded-queue oldest-drops and frames abandoned while a peer was down
}

// add accumulates one endpoint's transport counters.
func (s *LinkStats) add(t transport.LinkStats) {
	s.Dials += t.Dials
	s.DialFailures += t.DialFailures
	s.Handshakes += t.Handshakes
	s.HandshakeFailures += t.HandshakeFailures
	s.AuthRejects += t.AuthRejects
	s.Reconnects += t.Reconnects
	s.FramesSent += t.FramesSent
	s.FramesReceived += t.FramesReceived
	s.BytesSent += t.BytesSent
	s.BytesReceived += t.BytesReceived
	s.FramesDropped += t.FramesDropped
}

// GenerateTLS mints a cluster CA plus a certificate pair for every identity
// in the config's topology (clients included), writes the PEM files under
// dir, and records the paths in the config — so a subsequent Save emits a
// descriptor whose nodes and clients all come up over mutual TLS.
//
// dir is recorded in the config as given; keep it relative to the directory
// the config file will live in (LoadConfig resolves relative paths against
// the config file's location), or use GenerateTLSFor, which handles that
// placement. The CA key is written as ca-key.pem for minting future
// certificates; no node ever needs it.
func (c *Config) GenerateTLS(dir string) error {
	top, err := c.topology()
	if err != nil {
		return err
	}
	return c.d.GenerateTLS(top.AllNodes(), dir, dir)
}

// GenerateTLSFor is GenerateTLS for a config that will be saved at
// configPath: a relative dir is written next to the config file (where
// LoadConfig will later resolve it) while the config records dir as given.
// saebft-keygen uses it so `-out deploy/cluster.json -tls` puts the certs
// under deploy/certs no matter where keygen runs.
func (c *Config) GenerateTLSFor(configPath, dir string) error {
	top, err := c.topology()
	if err != nil {
		return err
	}
	writeDir := dir
	if !filepath.IsAbs(dir) {
		writeDir = filepath.Join(filepath.Dir(configPath), dir)
	}
	return c.d.GenerateTLS(top.AllNodes(), writeDir, dir)
}

// TLSEnabled reports whether the config prescribes mutual-TLS links.
func (c *Config) TLSEnabled() bool { return c.d.TLS != nil }

// TLSPaths returns the CA certificate and the cert/key pair paths the
// config prescribes for identity id, resolved against the config file's
// location; ok is false when the deployment is plaintext. Command-line
// tools use it to default their -ca/-cert/-key flags.
func (c *Config) TLSPaths(id int) (ca, cert, key string, ok bool) {
	return c.d.TLSPaths(types.NodeID(id))
}

// TLSFlags carries the conventional -tls/-ca/-cert/-key command-line flag
// values the saebft tools share; Resolve turns them into a decision. TLSSet
// distinguishes an explicit -tls=false (force plaintext) from the flag
// being absent (follow the config).
type TLSFlags struct {
	TLS           bool
	TLSSet        bool
	CA, Cert, Key string
}

// Resolve applies the shared flag semantics against the config for identity
// id: explicit file flags override the config's paths (unset ones fill in
// from the config) and enable TLS even without a config tls section;
// -tls=false forces plaintext (insecure=true); bare -tls errors when no
// material exists anywhere. ca=="" with insecure==false means config-driven
// — TLS exactly when the config prescribes it.
func (f TLSFlags) Resolve(cfg *Config, id int) (ca, cert, key string, insecure bool, err error) {
	if f.TLSSet && !f.TLS {
		return "", "", "", true, nil
	}
	ca, cert, key = f.CA, f.Cert, f.Key
	if ca != "" || cert != "" || key != "" {
		cca, ccert, ckey, _ := cfg.TLSPaths(id)
		if ca == "" {
			ca = cca
		}
		if cert == "" {
			cert = ccert
		}
		if key == "" {
			key = ckey
		}
		if ca == "" || cert == "" || key == "" {
			return "", "", "", false, fmt.Errorf("saebft: TLS needs all of -ca, -cert, -key when the config has no tls section")
		}
		return ca, cert, key, false, nil
	}
	if f.TLS && !cfg.TLSEnabled() {
		return "", "", "", false, fmt.Errorf("saebft: -tls requested but the config has no tls section and no -ca/-cert/-key were given; regenerate with `saebft-keygen -tls` or pass the material explicitly")
	}
	return "", "", "", false, nil
}
