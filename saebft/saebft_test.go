package saebft

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// startSim builds and starts a sim-transport cluster, tying its lifetime to
// the test.
func startSim(t *testing.T, opts ...Option) *Cluster {
	t.Helper()
	c, err := NewCluster(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSmokeAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeBase, ModeSeparate, ModeFirewall} {
		t.Run(mode.String(), func(t *testing.T) {
			c := startSim(t,
				WithMode(mode),
				WithApp("kv"),
				WithClients(2),
			)
			info := c.Info()
			if info.Mode != mode {
				t.Fatalf("Info.Mode = %v, want %v", info.Mode, mode)
			}
			if info.Agreement != 4 {
				t.Fatalf("agreement replicas = %d, want 4", info.Agreement)
			}
			if mode == ModeBase && info.Execution != 0 {
				t.Fatalf("BASE has %d execution replicas, want 0", info.Execution)
			}
			if mode != ModeBase && info.Execution != 3 {
				t.Fatalf("execution replicas = %d, want 3", info.Execution)
			}
			if mode == ModeFirewall && info.Filters != 4 {
				t.Fatalf("filters = %d, want 4", info.Filters)
			}

			ctx := context.Background()
			cl := c.Client()
			put, err := EncodeOp("kv", "put", "paper", "sosp2003")
			if err != nil {
				t.Fatal(err)
			}
			if reply, err := cl.Invoke(ctx, put); err != nil {
				t.Fatalf("put: %v", err)
			} else if string(reply) != "OK" {
				t.Fatalf("put reply = %q", reply)
			}
			get, _ := EncodeOp("kv", "get", "paper")
			reply, err := cl.Invoke(ctx, get)
			if err != nil {
				t.Fatalf("get: %v", err)
			}
			if !bytes.Equal(reply, []byte("sosp2003")) {
				t.Fatalf("get reply = %q, want sosp2003", reply)
			}
			st, err := c.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Replies < 2 {
				t.Fatalf("stats replies = %d, want >= 2", st.Replies)
			}
		})
	}
}

func TestLifecycle(t *testing.T) {
	c, err := NewCluster(WithApp("counter"))
	if err != nil {
		t.Fatal(err)
	}
	// Client before Start fails cleanly.
	if _, err := c.Client().Invoke(context.Background(), []byte("inc")); err != ErrNotStarted {
		t.Fatalf("invoke before start: err = %v, want ErrNotStarted", err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err == nil {
		t.Fatal("second Start should fail")
	}
	if reply, err := c.Client().Invoke(context.Background(), []byte("inc")); err != nil || string(reply) != "1" {
		t.Fatalf("inc = %q, %v", reply, err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close must be idempotent: %v", err)
	}
	if _, err := c.Client().Invoke(context.Background(), []byte("inc")); err != ErrClosed {
		t.Fatalf("invoke after close: err = %v, want ErrClosed", err)
	}
}

func TestContextCancelClosesCluster(t *testing.T) {
	c, err := NewCluster(WithApp("counter"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client().Invoke(context.Background(), []byte("inc")); err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Client().Invoke(context.Background(), []byte("inc")); err == ErrClosed {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster did not close after context cancellation")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestInvokeContextCancellation(t *testing.T) {
	c := startSim(t, WithApp("counter"), WithClients(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Client().Invoke(ctx, []byte("inc")); err == nil {
		t.Fatal("invoke with canceled context should fail")
	}
	// The logical client must be reusable afterwards.
	if reply, err := c.Client().Invoke(context.Background(), []byte("get")); err != nil {
		t.Fatalf("invoke after cancellation: %v", err)
	} else if string(reply) != "0" && string(reply) != "1" {
		t.Fatalf("counter = %q after canceled inc", reply)
	}
}

func TestCrashSurvival(t *testing.T) {
	c := startSim(t, WithMode(ModeSeparate), WithApp("counter"), WithClients(2))
	ctx := context.Background()
	cl := c.Client()
	if _, err := cl.Invoke(ctx, []byte("inc")); err != nil {
		t.Fatal(err)
	}
	// Execution survives g=1 crashed executor.
	if err := c.CrashExec(0); err != nil {
		t.Fatal(err)
	}
	if reply, err := cl.Invoke(ctx, []byte("inc")); err != nil {
		t.Fatalf("inc with crashed executor: %v", err)
	} else if string(reply) != "2" {
		t.Fatalf("counter = %q, want 2", reply)
	}
	// Agreement survives a crashed primary via view change.
	if err := c.CrashAgreement(0); err != nil {
		t.Fatal(err)
	}
	if reply, err := cl.Invoke(ctx, []byte("inc")); err != nil {
		t.Fatalf("inc after primary crash: %v", err)
	} else if string(reply) != "3" {
		t.Fatalf("counter = %q, want 3", reply)
	}
}

func TestByzantineExecMasked(t *testing.T) {
	c := startSim(t, WithMode(ModeFirewall), WithApp("kv"), WithClients(1))
	secret := []byte("account-balance: 1,000,000")
	leaks := 0
	if err := c.Tap(func(from, to int, payload []byte) {
		if bytes.Contains(payload, secret) {
			leaks++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.ByzantineExec(0); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cl := c.Client()
	put, _ := EncodeOp("kv", "put", "vault", string(secret))
	if _, err := cl.Invoke(ctx, put); err != nil {
		t.Fatal(err)
	}
	get, _ := EncodeOp("kv", "get", "vault")
	got, err := cl.Invoke(ctx, get)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("read back %q despite Byzantine executor", got)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SharesRejected == 0 {
		t.Fatal("filters rejected no forged shares; the adversary was idle")
	}
	if leaks != 0 {
		t.Fatalf("secret crossed the network in plaintext %d times", leaks)
	}
}

func TestSimOnlyHooksOnTCP(t *testing.T) {
	c, err := NewCluster(WithApp("counter"), WithTransport(TCPTransport()), WithClients(1), WithThresholdBits(512))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CrashExec(0); err != ErrSimOnly {
		t.Fatalf("CrashExec on TCP: err = %v, want ErrSimOnly", err)
	}
}

// TestConcurrentInvokeAsync proves that one handle admits at least 8
// concurrent in-flight requests and completes them all correctly. The sim
// driver is parked while the requests are admitted, so the in-flight count
// is observed deterministically, then released to let them complete.
func TestConcurrentInvokeAsync(t *testing.T) {
	const width = 8
	const total = 2 * width
	c := startSim(t, WithMode(ModeSeparate), WithApp("kv"), WithClients(width))
	cl := c.Client()
	if cl.Pipeline() != width {
		t.Fatalf("Pipeline = %d, want %d", cl.Pipeline(), width)
	}

	sr, err := c.sim()
	if err != nil {
		t.Fatal(err)
	}
	sr.holdStepping.Store(true)

	ctx := context.Background()
	results := make([]<-chan Result, total)
	for i := 0; i < total; i++ {
		op, err := EncodeOp("kv", "put", fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		results[i] = cl.InvokeAsync(ctx, op)
	}
	// With the driver parked, exactly `width` invocations are admitted —
	// the pipelined in-flight window — and the rest are queued.
	if got := cl.InFlight(); got != width {
		t.Fatalf("InFlight with driver parked = %d, want %d", got, width)
	}
	sr.holdStepping.Store(false)

	for i, ch := range results {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("op %d: %v", i, res.Err)
		}
		if string(res.Reply) != "OK" {
			t.Fatalf("op %d reply = %q", i, res.Reply)
		}
	}
	if got := cl.MaxInFlight(); got < width {
		t.Fatalf("MaxInFlight = %d, want >= %d", got, width)
	}
	if got := cl.InFlight(); got != 0 {
		t.Fatalf("InFlight after completion = %d, want 0", got)
	}

	// All writes must have been applied: read every key back.
	for i := 0; i < total; i++ {
		get, _ := EncodeOp("kv", "get", fmt.Sprintf("key-%d", i))
		reply, err := cl.Invoke(ctx, get)
		if err != nil {
			t.Fatalf("get key-%d: %v", i, err)
		}
		if want := fmt.Sprintf("value-%d", i); string(reply) != want {
			t.Fatalf("key-%d = %q, want %q", i, reply, want)
		}
	}
}

// TestConcurrentInvokeSharedHandle hammers one handle from many goroutines
// mixing Invoke and InvokeAsync.
func TestConcurrentInvokeSharedHandle(t *testing.T) {
	c := startSim(t, WithApp("counter"), WithClients(4))
	cl := c.Client()
	ctx := context.Background()
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				if _, err := cl.Invoke(ctx, []byte("inc")); err != nil {
					errs <- err
				}
				return
			}
			if res := <-cl.InvokeAsync(ctx, []byte("inc")); res.Err != nil {
				errs <- res.Err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	reply, err := cl.Invoke(ctx, []byte("get"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != fmt.Sprint(n) {
		t.Fatalf("counter = %q after %d concurrent incs", reply, n)
	}
}

func TestCustomAppFactory(t *testing.T) {
	c := startSim(t,
		WithAppFactory(func() StateMachine {
			return StateMachineFunc(func(op []byte, nd NonDet) []byte {
				return append([]byte("echo:"), op...)
			})
		}),
		WithClients(1),
	)
	reply, err := c.Client().Invoke(context.Background(), []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:hello" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestRegisteredAppByName(t *testing.T) {
	RegisterApp("test-upper", func() StateMachine {
		return StateMachineFunc(func(op []byte, nd NonDet) []byte {
			return bytes.ToUpper(op)
		})
	})
	c := startSim(t, WithApp("test-upper"), WithClients(1))
	reply, err := c.Client().Invoke(context.Background(), []byte("shout"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "SHOUT" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestUnknownAppFails(t *testing.T) {
	if _, err := NewCluster(WithApp("no-such-app")); err == nil {
		t.Fatal("NewCluster with unknown app should fail")
	}
}
