// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (§5). Each benchmark prints/reports the same quantities
// the paper plots; `go test -bench=. -benchmem` runs them all at quick scale,
// and cmd/saebft-bench renders the full tables.
//
// Reported custom metrics:
//
//	virt-ms/op   — virtual-time latency per request (Figure 3, 6, 7)
//	achieved/s   — completed requests per virtual second (Figure 5)
package repro

import (
	"fmt"
	"testing"

	"repro/internal/apps/nfs"
	"repro/internal/apps/nullsrv"
	"repro/internal/auth"
	"repro/internal/bench"
	"repro/internal/bench/costmodel"
	"repro/internal/core"
	"repro/internal/sm"
	"repro/internal/threshold"
	"repro/internal/types"
)

// --- Figure 3: null-server latency ------------------------------------------------

func BenchmarkFig3Latency(b *testing.B) {
	sizes := [][2]int{{40, 40}, {40, 4096}, {4096, 40}}
	for _, sz := range sizes {
		for _, cfg := range bench.Fig3Configs(sz[0], sz[1], 0, 512) {
			cfg := cfg
			name := fmt.Sprintf("%s/%d-%d", cfg.Label, sz[0], sz[1])
			b.Run(name, func(b *testing.B) {
				opts := cfg.Opts
				opts.App = func() sm.StateMachine { return nullsrv.New(cfg.RepSize) }
				opts.Net.MeasureCompute = true
				c, err := core.BuildSim(opts)
				if err != nil {
					b.Fatal(err)
				}
				if cfg.Colocate {
					for i, e := range c.Top.Execution {
						c.Net.Colocate(e, c.Top.Agreement[i%len(c.Top.Agreement)])
					}
				}
				op := nullsrv.MakeRequest(cfg.ReqSize)
				var virt types.Time
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					start := c.Net.Now()
					if _, err := c.Invoke(0, op, types.Time(60e9)); err != nil {
						b.Fatal(err)
					}
					virt += c.Net.Now() - start
				}
				b.ReportMetric(float64(virt)/1e6/float64(b.N), "virt-ms/op")
			})
		}
	}
}

// --- Figure 4: relative cost model --------------------------------------------------

func BenchmarkFig4CostModel(b *testing.B) {
	p := costmodel.PaperParams()
	var sink float64
	for i := 0; i < b.N; i++ {
		pts := costmodel.Figure4Series(p)
		sink += pts[len(pts)-1].RelCost
	}
	if b.N > 0 && sink == 0 {
		b.Fatal("cost model produced zeros")
	}
	// Report the headline crossovers as metrics.
	b.ReportMetric(costmodel.CrossoverApp(costmodel.SepPriv, costmodel.BASE, p, 10, 0.01, 1000), "xover-b10-ms")
	b.ReportMetric(costmodel.CrossoverApp(costmodel.SepPriv, costmodel.BASE, p, 100, 0.01, 1000), "xover-b100-ms")
}

// --- Figure 5: throughput vs bundle size ----------------------------------------------

func BenchmarkFig5Throughput(b *testing.B) {
	for _, bundle := range []int{1, 2, 3, 5} {
		bundle := bundle
		b.Run(fmt.Sprintf("bundle-%d", bundle), func(b *testing.B) {
			var achieved, resp float64
			for i := 0; i < b.N; i++ {
				res, err := bench.RunThroughput(bench.ThroughputConfig{
					Bundle:        bundle,
					RatePerSec:    800,
					ReqSize:       1024,
					RepSize:       1024,
					Requests:      80,
					ThresholdBits: 512,
				})
				if err != nil {
					b.Fatal(err)
				}
				achieved += res.AchievedPerSec
				resp += res.MeanRespMs
			}
			b.ReportMetric(achieved/float64(b.N), "achieved/s")
			b.ReportMetric(resp/float64(b.N), "resp-ms")
		})
	}
}

// --- Figures 6 and 7: Andrew benchmark --------------------------------------------------

func benchmarkAndrew(b *testing.B, label string, run func() (bench.AndrewResult, error)) {
	b.Helper()
	var virt types.Time
	for i := 0; i < b.N; i++ {
		res, err := run()
		if err != nil {
			b.Fatalf("%s: %v", label, err)
		}
		virt += res.Total
	}
	b.ReportMetric(float64(virt)/1e6/float64(b.N), "virt-ms/op")
}

func BenchmarkFig6Andrew(b *testing.B) {
	cfg := bench.AndrewConfig{N: 1, Dirs: 2, FilesPerDir: 3, FileSize: 1024}
	b.Run("NoReplication", func(b *testing.B) {
		benchmarkAndrew(b, "norep", func() (bench.AndrewResult, error) {
			return bench.RunAndrew("norep", bench.NewNoRepInvoker(nfs.New()), cfg)
		})
	})
	b.Run("BASE", func(b *testing.B) {
		benchmarkAndrew(b, "BASE", func() (bench.AndrewResult, error) {
			return bench.RunAndrewOnCluster("BASE", bench.AndrewClusterOptions(core.ModeBASE, 512), cfg, bench.FaultNone)
		})
	})
	b.Run("Firewall", func(b *testing.B) {
		benchmarkAndrew(b, "Firewall", func() (bench.AndrewResult, error) {
			return bench.RunAndrewOnCluster("Firewall", bench.AndrewClusterOptions(core.ModeFirewall, 512), cfg, bench.FaultNone)
		})
	})
}

func BenchmarkFig7AndrewFaults(b *testing.B) {
	cfg := bench.AndrewConfig{N: 1, Dirs: 2, FilesPerDir: 3, FileSize: 1024}
	b.Run("FaultyExecServer", func(b *testing.B) {
		benchmarkAndrew(b, "faulty exec", func() (bench.AndrewResult, error) {
			return bench.RunAndrewOnCluster("faulty exec", bench.AndrewClusterOptions(core.ModeFirewall, 512), cfg, bench.FaultExecReplica)
		})
	})
	b.Run("FaultyAgreementNode", func(b *testing.B) {
		benchmarkAndrew(b, "faulty agreement", func() (bench.AndrewResult, error) {
			return bench.RunAndrewOnCluster("faulty agreement", bench.AndrewClusterOptions(core.ModeFirewall, 512), cfg, bench.FaultAgreementReplica)
		})
	})
}

// --- §5.2 primitive costs: threshold signatures, MACs, signatures ------------------------

func thresholdKey(b *testing.B, bits int) (*threshold.PublicKey, []*threshold.KeyShare) {
	b.Helper()
	pub, shares, err := threshold.Deal(threshold.NewSeededReader("bench"), bits, 2, 3)
	if err != nil {
		b.Fatal(err)
	}
	return pub, shares
}

func BenchmarkThresholdSignShare(b *testing.B) {
	for _, bits := range []int{512, 1024} {
		b.Run(fmt.Sprintf("%dbit", bits), func(b *testing.B) {
			_, shares := thresholdKey(b, bits)
			d := types.DigestBytes([]byte("m"))
			rng := threshold.NewSeededReader("sign")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := shares[0].Sign(rng, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkThresholdCombine(b *testing.B) {
	for _, bits := range []int{512, 1024} {
		b.Run(fmt.Sprintf("%dbit", bits), func(b *testing.B) {
			pub, shares := thresholdKey(b, bits)
			d := types.DigestBytes([]byte("m"))
			rng := threshold.NewSeededReader("combine")
			s1, _ := shares[0].Sign(rng, d)
			s2, _ := shares[1].Sign(rng, d)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pub.Combine(d, []*threshold.SigShare{s1, s2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkThresholdVerify(b *testing.B) {
	for _, bits := range []int{512, 1024} {
		b.Run(fmt.Sprintf("%dbit", bits), func(b *testing.B) {
			pub, shares := thresholdKey(b, bits)
			d := types.DigestBytes([]byte("m"))
			rng := threshold.NewSeededReader("verify")
			s1, _ := shares[0].Sign(rng, d)
			s2, _ := shares[1].Sign(rng, d)
			sig, err := pub.Combine(d, []*threshold.SigShare{s1, s2})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pub.Verify(d, sig); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMACAttest(b *testing.B) {
	top := core.BuildTopology(1, 1, 0, 1, core.ModeSeparate)
	mat, err := core.NewMaterial("bench", top, 0)
	if err != nil {
		b.Fatal(err)
	}
	scheme := mat.MACScheme(top.Agreement[0], top.AllNodes())
	d := types.DigestBytes([]byte("m"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheme.Attest(auth.KindOrder, d, top.Execution); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEd25519Attest(b *testing.B) {
	top := core.BuildTopology(1, 1, 0, 1, core.ModeSeparate)
	mat, err := core.NewMaterial("bench", top, 0)
	if err != nil {
		b.Fatal(err)
	}
	scheme := mat.SigScheme(top.Agreement[0])
	d := types.DigestBytes([]byte("m"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheme.Attest(auth.KindCommit, d, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: cost of scaling each cluster's fault tolerance independently ---

// BenchmarkAblationFaultScale measures request latency as each dimension of
// fault tolerance grows, the design-choice ablation DESIGN.md calls out: the
// separated architecture pays for execution faults with only two replicas
// per additional fault (2g+1) instead of three (3f+1), and firewall depth
// costs two extra hops per additional tolerated filter fault.
func BenchmarkAblationFaultScale(b *testing.B) {
	cases := []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"f1-g1", func(o *core.Options) { o.F, o.G = 1, 1 }},
		{"f2-g1", func(o *core.Options) { o.F, o.G = 2, 1 }},
		{"f1-g2", func(o *core.Options) { o.F, o.G = 1, 2 }},
		{"f2-g2", func(o *core.Options) { o.F, o.G = 2, 2 }},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			opts := core.Options{
				Mode:               core.ModeSeparate,
				BatchSize:          1,
				CheckpointInterval: 128,
				WindowSize:         512,
				Pipeline:           64,
				RequestTimeout:     types.Millisecond(2000),
				ClientRetransmit:   types.Millisecond(1000),
				App:                func() sm.StateMachine { return nullsrv.New(128) },
			}
			opts.Net.MeasureCompute = true
			tc.mutate(&opts)
			c, err := core.BuildSim(opts)
			if err != nil {
				b.Fatal(err)
			}
			op := nullsrv.MakeRequest(128)
			var virt types.Time
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := c.Net.Now()
				if _, err := c.Invoke(0, op, types.Time(60e9)); err != nil {
					b.Fatal(err)
				}
				virt += c.Net.Now() - start
			}
			b.ReportMetric(float64(virt)/1e6/float64(b.N), "virt-ms/op")
		})
	}
}

// BenchmarkAblationFirewallDepth grows the filter grid: each extra tolerated
// filter fault adds one row (two hops round trip) and one column.
func BenchmarkAblationFirewallDepth(b *testing.B) {
	for _, h := range []int{1, 2} {
		h := h
		b.Run(fmt.Sprintf("h%d", h), func(b *testing.B) {
			opts := core.Options{
				Mode:               core.ModeFirewall,
				H:                  h,
				BatchSize:          1,
				CheckpointInterval: 128,
				WindowSize:         512,
				Pipeline:           64,
				ThresholdBits:      512,
				RequestTimeout:     types.Millisecond(2000),
				ClientRetransmit:   types.Millisecond(1000),
				App:                func() sm.StateMachine { return nullsrv.New(128) },
			}
			opts.Net.MeasureCompute = true
			c, err := core.BuildSim(opts)
			if err != nil {
				b.Fatal(err)
			}
			op := nullsrv.MakeRequest(128)
			var virt types.Time
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := c.Net.Now()
				if _, err := c.Invoke(0, op, types.Time(60e9)); err != nil {
					b.Fatal(err)
				}
				virt += c.Net.Now() - start
			}
			b.ReportMetric(float64(virt)/1e6/float64(b.N), "virt-ms/op")
		})
	}
}
