// webgateway: an HTTP front end for a replicated key-value service,
// demonstrating the certified fast read path on a read-heavy workload.
//
// Writes (PUT/DELETE) go through full BFT agreement via Invoke. Reads (GET)
// are served by Client.ReadCertified: the execution replicas answer directly
// from applied state, and g+1 matching signed answers certify the result
// without an agreement round — an order of magnitude cheaper, which is what
// a web tier serving mostly GETs wants. When a read cannot certify (the
// operation is not read-only, replicas lag, or answers diverge) it falls
// back to full agreement transparently, so the gateway never serves an
// uncertified byte.
//
// Read-your-writes across HTTP requests rides the session watermark: every
// response carries X-Saebft-Watermark, and a caller that echoes the header
// back gets a session floored at its own last write — even if its requests
// land on different gateway processes in a real deployment.
//
//	go run ./examples/webgateway            # serve on 127.0.0.1:8080
//	go run ./examples/webgateway -demo      # self-driving smoke run
//
//	curl -X PUT  -d sosp2003 localhost:8080/kv/paper
//	curl               localhost:8080/kv/paper
//	curl               localhost:8080/stats
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/saebft"
)

// watermarkHeader transfers the session floor between gateway and caller.
const watermarkHeader = "X-Saebft-Watermark"

// gateway serves one replicated kv service over HTTP.
type gateway struct {
	client *saebft.Client
}

// sessionFor derives the read-your-writes session for one request: the
// handle's implicit session, advanced to whatever watermark the caller
// proved it has already observed.
func (g *gateway) sessionFor(r *http.Request) *saebft.Session {
	s := g.client.Session()
	if wm, err := strconv.ParseUint(r.Header.Get(watermarkHeader), 10, 64); err == nil {
		s.AdvanceTo(wm)
	}
	return s
}

func (g *gateway) handleKV(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/kv/")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	s := g.sessionFor(r)
	var (
		reply []byte
		err   error
	)
	switch r.Method {
	case http.MethodGet:
		var op []byte
		if op, err = saebft.EncodeOp("kv", "get", key); err == nil {
			reply, err = s.ReadCertified(r.Context(), op)
		}
	case http.MethodPut, http.MethodPost:
		var body []byte
		if body, err = io.ReadAll(io.LimitReader(r.Body, 1<<20)); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var op []byte
		if op, err = saebft.EncodeOp("kv", "put", key, string(body)); err == nil {
			reply, err = s.Invoke(r.Context(), op)
		}
	case http.MethodDelete:
		var op []byte
		if op, err = saebft.EncodeOp("kv", "del", key); err == nil {
			reply, err = s.Invoke(r.Context(), op)
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set(watermarkHeader, strconv.FormatUint(s.Watermark(), 10))
	if r.Method == http.MethodGet && len(reply) == 0 {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	w.Write(reply)
	if r.Method == http.MethodGet {
		w.Write([]byte("\n"))
	} else {
		fmt.Fprintf(w, " key=%s\n", key)
	}
}

func (g *gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := g.client.ClientStats()
	st, err := g.client.Stats()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]interface{}{
		"reads":           cs.Reads,
		"reads_certified": cs.ReadsCertified,
		"read_retries":    cs.ReadRetries,
		"read_fallbacks":  cs.ReadFallbacks,
		"watermark":       cs.Watermark,
		"reads_served":    st.ReadsServed,
		"reads_refused":   st.ReadsRefused,
		"requests":        st.Requests,
	})
}

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		demo = flag.Bool("demo", false, "drive a smoke workload against the gateway, print stats, and exit")
	)
	flag.Parse()

	cluster, err := saebft.NewCluster(
		saebft.WithMode(saebft.ModeSeparate),
		saebft.WithApp("kv"),
		saebft.WithTransport(saebft.TCPTransport()),
		saebft.WithClients(8), // pipeline width: concurrent HTTP requests
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	g := &gateway{client: cluster.Client()}
	mux := http.NewServeMux()
	mux.HandleFunc("/kv/", g.handleKV)
	mux.HandleFunc("/stats", g.handleStats)

	listen := *addr
	if *demo {
		listen = "127.0.0.1:0" // never collide in CI
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	log.Printf("webgateway: 4 agreement + 3 execution replicas behind %s", base)

	if !*demo {
		select {} // serve until interrupted
	}
	if err := runDemo(base); err != nil {
		log.Fatal(err)
	}
}

// runDemo exercises the gateway the way a web client would: a write, then
// reads that must observe it (watermark echoed back), then the counters that
// prove the reads ran on the fast path.
func runDemo(base string) error {
	hc := &http.Client{Timeout: 30 * time.Second}
	req, _ := http.NewRequest(http.MethodPut, base+"/kv/paper", strings.NewReader("sosp2003"))
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("PUT status %d", resp.StatusCode)
	}
	watermark := resp.Header.Get(watermarkHeader)
	if watermark == "" || watermark == "0" {
		return fmt.Errorf("PUT reported no watermark")
	}
	fmt.Printf("PUT /kv/paper      -> watermark %s\n", watermark)

	for i := 0; i < 8; i++ {
		req, _ := http.NewRequest(http.MethodGet, base+"/kv/paper", nil)
		// Echoing the watermark pins read-your-writes even across gateways.
		req.Header.Set(watermarkHeader, watermark)
		resp, err := hc.Do(req)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if got := strings.TrimSpace(string(body)); resp.StatusCode != http.StatusOK || got != "sosp2003" {
			return fmt.Errorf("GET %d: status %d body %q", i, resp.StatusCode, got)
		}
		watermark = resp.Header.Get(watermarkHeader)
	}
	fmt.Printf("GET /kv/paper x8   -> sosp2003 (watermark %s)\n", watermark)

	resp, err = hc.Get(base + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var stats struct {
		Reads          uint64 `json:"reads"`
		ReadsCertified uint64 `json:"reads_certified"`
		ReadFallbacks  uint64 `json:"read_fallbacks"`
		ReadsServed    uint64 `json:"reads_served"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return err
	}
	fmt.Printf("stats: %d reads, %d certified on the fast path, %d fallbacks, %d replica answers\n",
		stats.Reads, stats.ReadsCertified, stats.ReadFallbacks, stats.ReadsServed)
	if stats.ReadsCertified == 0 {
		return fmt.Errorf("no read certified on the fast path")
	}
	fmt.Println("all GETs served by g+1 matching signed replica answers - no agreement rounds")
	return nil
}
