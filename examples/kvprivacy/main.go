// kvprivacy: a key-value store behind the privacy firewall, with a
// compromised execution replica actively trying to corrupt results and leak
// data — and failing.
//
// The deployment is the paper's Figure 2(c): clients talk only to the
// agreement cluster; a 2×2 grid of filters sits between agreement and
// execution; request and reply bodies are sealed so relay nodes carry only
// ciphertext; reply certificates are threshold signatures, so they are
// byte-identical regardless of which correct executors answered.
//
//	go run ./examples/kvprivacy
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/saebft"
)

func main() {
	ctx := context.Background()
	cluster, err := saebft.NewCluster(
		saebft.WithMode(saebft.ModeFirewall),
		saebft.WithApp("kv"),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	info := cluster.Info()
	fmt.Printf("cluster: %d agreement + %d execution + %dx%d firewall grid\n",
		info.Agreement, info.Execution, info.FilterRows, info.FilterRows)

	secret := []byte("account-balance: 1,000,000")

	// Wiretap every link: the secret must never appear in plaintext.
	leaks := 0
	if err := cluster.Tap(func(from, to int, payload []byte) {
		if bytes.Contains(payload, secret) {
			leaks++
		}
	}); err != nil {
		log.Fatal(err)
	}

	// Compromise one executor: it spams the top filter row with forged
	// replies and raw garbage instead of executing anything.
	if err := cluster.ByzantineExec(0); err != nil {
		log.Fatal(err)
	}

	client := cluster.Client()
	put, err := saebft.EncodeOp("kv", "put", "vault", string(secret))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := client.Invoke(ctx, put); err != nil {
		log.Fatal(err)
	}
	get, err := saebft.EncodeOp("kv", "get", "vault")
	if err != nil {
		log.Fatal(err)
	}
	got, err := client.Invoke(ctx, get)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client read back:   %q (correct despite the Byzantine executor)\n", got)
	if !bytes.Equal(got, secret) {
		log.Fatal("CORRUPTED RESULT — this should be impossible")
	}

	stats, err := cluster.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filters rejected:   %d forged shares/certificates\n", stats.SharesRejected)
	fmt.Printf("plaintext leaks:    %d (bodies are sealed end to end)\n", leaks)
	if leaks > 0 {
		log.Fatal("SECRET LEAKED IN PLAINTEXT — this should be impossible")
	}
}
