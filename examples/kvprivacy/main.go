// kvprivacy: a key-value store behind the privacy firewall, with a
// compromised execution replica actively trying to corrupt results and leak
// data — and failing.
//
// The deployment is the paper's Figure 2(c): clients talk only to the
// agreement cluster; a 2×2 grid of filters sits between agreement and
// execution; request and reply bodies are sealed so relay nodes carry only
// ciphertext; reply certificates are threshold signatures, so they are
// byte-identical regardless of which correct executors answered.
//
//	go run ./examples/kvprivacy
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/apps/kv"
	"repro/internal/core"
	"repro/internal/sm"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

func main() {
	cluster, err := core.BuildSim(core.Options{
		Mode: core.ModeFirewall,
		App:  func() sm.StateMachine { return kv.New() },
	})
	if err != nil {
		log.Fatal(err)
	}
	top := cluster.Top
	fmt.Printf("cluster: %d agreement + %d execution + %dx%d firewall grid\n",
		len(top.Agreement), len(top.Execution), top.H()+1, top.H()+1)

	secret := []byte("account-balance: 1,000,000")

	// Wiretap every link: the secret must never appear in plaintext.
	leaks := 0
	cluster.Net.Tap(func(from, to types.NodeID, data []byte) {
		if bytes.Contains(data, secret) {
			leaks++
		}
	})

	// Compromise one executor: it spams the top filter row with forged
	// replies claiming the secret is something else, plus raw garbage.
	evil := top.Execution[0]
	cluster.Net.Swap(evil, transport.NodeFunc{
		OnDeliver: func(from types.NodeID, data []byte, now types.Time) {
			send := cluster.Net.Bind(evil)
			for _, f := range top.Filters[top.H()] {
				forged := &wire.ExecReply{
					Entries:  []wire.Reply{{Seq: 1, Client: top.Clients[0], Timestamp: 1, Body: []byte("FORGED")}},
					Executor: evil,
					Share:    []byte("not a valid threshold share"),
				}
				send(f, wire.Marshal(forged))
				send(f, []byte("garbage"))
			}
		},
	})

	const timeout = types.Time(10e9)
	if _, err := cluster.Invoke(0, kv.Put("vault", secret), timeout); err != nil {
		log.Fatal(err)
	}
	got, err := cluster.Invoke(0, kv.GetOp("vault"), timeout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client read back:   %q (correct despite the Byzantine executor)\n", got)
	if !bytes.Equal(got, secret) {
		log.Fatal("CORRUPTED RESULT — this should be impossible")
	}

	rejected := uint64(0)
	for _, f := range cluster.Filters {
		rejected += f.Metrics.SharesRejected
	}
	fmt.Printf("filters rejected:   %d forged shares/certificates\n", rejected)
	fmt.Printf("plaintext leaks:    %d (bodies are sealed end to end)\n", leaks)
	if leaks > 0 {
		log.Fatal("SECRET LEAKED IN PLAINTEXT — this should be impossible")
	}
}
