// Quickstart: replicate a counter with separated agreement and execution.
//
// This builds the paper's Figure 1(b) architecture on the in-process
// simulated network: 4 agreement replicas order requests, 3 execution
// replicas run the counter, and the client accepts a reply only when g+1=2
// executors vouch for it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/counter"
	"repro/internal/core"
	"repro/internal/sm"
	"repro/internal/types"
)

func main() {
	cluster, err := core.BuildSim(core.Options{
		Mode: core.ModeSeparate, // 3f+1 agreement + 2g+1 execution
		App:  func() sm.StateMachine { return counter.New() },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d agreement replicas, %d execution replicas (f=%d, g=%d)\n",
		len(cluster.Top.Agreement), len(cluster.Top.Execution), cluster.Top.F(), cluster.Top.G())

	const timeout = types.Time(5e9)
	for _, op := range []string{"inc", "inc", "add 40", "get"} {
		reply, err := cluster.Invoke(0, []byte(op), timeout)
		if err != nil {
			log.Fatalf("%s: %v", op, err)
		}
		fmt.Printf("  %-8s → %s\n", op, reply)
	}

	// The whole point: execution survives a crashed executor (g=1).
	cluster.CrashExec(0)
	reply, err := cluster.Invoke(0, []byte("inc"), timeout)
	if err != nil {
		log.Fatalf("inc with crashed executor: %v", err)
	}
	fmt.Printf("after crashing one executor: inc → %s (still certified by a majority)\n", reply)

	// ... and agreement survives a crashed primary via view change.
	cluster.CrashAgreement(0)
	reply, err = cluster.Invoke(0, []byte("inc"), types.Time(20e9))
	if err != nil {
		log.Fatalf("inc after primary crash: %v", err)
	}
	fmt.Printf("after crashing the primary:   inc → %s (view change elected a new primary)\n", reply)
}
