// Quickstart: replicate a counter with separated agreement and execution.
//
// This builds the paper's Figure 1(b) architecture on the in-process
// simulated network: 4 agreement replicas order requests, 3 execution
// replicas run the counter, and the client accepts a reply only when g+1=2
// executors vouch for it.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/saebft"
)

func main() {
	ctx := context.Background()
	cluster, err := saebft.NewCluster(
		saebft.WithMode(saebft.ModeSeparate), // 3f+1 agreement + 2g+1 execution
		saebft.WithApp("counter"),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	info := cluster.Info()
	fmt.Printf("cluster: %d agreement replicas, %d execution replicas (f=%d, g=%d)\n",
		info.Agreement, info.Execution, info.F, info.G)

	client := cluster.Client()
	for _, op := range []string{"inc", "inc", "add 40", "get"} {
		reply, err := client.Invoke(ctx, []byte(op))
		if err != nil {
			log.Fatalf("%s: %v", op, err)
		}
		fmt.Printf("  %-8s → %s\n", op, reply)
	}

	// The whole point: execution survives a crashed executor (g=1).
	if err := cluster.CrashExec(0); err != nil {
		log.Fatal(err)
	}
	reply, err := client.Invoke(ctx, []byte("inc"))
	if err != nil {
		log.Fatalf("inc with crashed executor: %v", err)
	}
	fmt.Printf("after crashing one executor: inc → %s (still certified by a majority)\n", reply)

	// ... and agreement survives a crashed primary via view change.
	if err := cluster.CrashAgreement(0); err != nil {
		log.Fatal(err)
	}
	reply, err = client.Invoke(ctx, []byte("inc"))
	if err != nil {
		log.Fatalf("inc after primary crash: %v", err)
	}
	fmt.Printf("after crashing the primary:   inc → %s (view change elected a new primary)\n", reply)
}
