// nfsandrew: run the paper's modified Andrew benchmark (§5.4) against the
// replicated NFS service in three configurations — unreplicated, the BASE
// baseline, and the full privacy-firewall architecture — and print the
// per-phase table of Figure 6.
//
//	go run ./examples/nfsandrew
package main

import (
	"fmt"
	"log"

	"repro/saebft"
)

func main() {
	cfg := saebft.AndrewConfig{N: 1, Dirs: 3, FilesPerDir: 4, FileSize: 2048}
	fmt.Printf("Andrew-%d: %d dirs x %d files x %dB per iteration\n\n",
		cfg.N, cfg.Dirs, cfg.FilesPerDir, cfg.FileSize)

	runs, err := saebft.RunAndrewComparison(cfg, 512)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s", "phase")
	for _, r := range runs {
		fmt.Printf(" %18s", r.Label)
	}
	fmt.Println()
	for p := 0; p < 5; p++ {
		fmt.Printf("%-8d", p+1)
		for _, r := range runs {
			fmt.Printf(" %18.1f", r.PhaseMs[p])
		}
		fmt.Println()
	}
	fmt.Printf("%-8s", "TOTAL")
	for _, r := range runs {
		fmt.Printf(" %18.1f", r.TotalMs)
	}
	fmt.Println("   (virtual ms)")

	norep, base, fw := runs[0], runs[1], runs[2]
	fmt.Printf("\nBASE is %.1fx no-replication; firewall is %.2fx BASE\n",
		base.TotalMs/norep.TotalMs, fw.TotalMs/base.TotalMs)
}
