// nfsandrew: run the paper's modified Andrew benchmark (§5.4) against the
// replicated NFS service in three configurations — unreplicated, the BASE
// baseline, and the full privacy-firewall architecture — and print the
// per-phase table of Figure 6.
//
//	go run ./examples/nfsandrew
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/nfs"
	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	cfg := bench.AndrewConfig{N: 1, Dirs: 3, FilesPerDir: 4, FileSize: 2048}
	fmt.Printf("Andrew-%d: %d dirs x %d files x %dB per iteration\n\n",
		cfg.N, cfg.Dirs, cfg.FilesPerDir, cfg.FileSize)

	norep, err := bench.RunAndrew("No Replication", bench.NewNoRepInvoker(nfs.New()), cfg)
	if err != nil {
		log.Fatal(err)
	}
	base, err := bench.RunAndrewOnCluster("BASE", bench.AndrewClusterOptions(core.ModeBASE, 512), cfg, bench.FaultNone)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := bench.RunAndrewOnCluster("Firewall", bench.AndrewClusterOptions(core.ModeFirewall, 512), cfg, bench.FaultNone)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %18s %18s %18s\n", "phase", norep.Label, base.Label, fw.Label)
	for p := 0; p < 5; p++ {
		fmt.Printf("%-8d %18s %18s %18s\n", p+1, norep.FmtMs(p), base.FmtMs(p), fw.FmtMs(p))
	}
	fmt.Printf("%-8s %18.1f %18.1f %18.1f   (virtual ms)\n", "TOTAL",
		float64(norep.Total)/1e6, float64(base.Total)/1e6, float64(fw.Total)/1e6)
	fmt.Printf("\nBASE is %.1fx no-replication; firewall is %.2fx BASE\n",
		float64(base.Total)/float64(norep.Total), float64(fw.Total)/float64(base.Total))
}
