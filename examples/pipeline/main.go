// pipeline: drive many concurrent in-flight requests through one client
// handle with InvokeAsync.
//
// The paper's client model keeps one request outstanding at a time (§2); a
// saebft.Client multiplexes many such logical clients behind one handle, so
// an embedding application gets pipelined concurrency without managing
// identities itself. This demo issues a burst of writes through an 8-wide
// handle, waits for all certificates, and then audits every key — and shows
// the same handle surviving an executor crash mid-burst.
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"

	"repro/saebft"
)

func main() {
	ctx := context.Background()
	const width = 8
	cluster, err := saebft.NewCluster(
		saebft.WithMode(saebft.ModeSeparate),
		saebft.WithApp("kv"),
		saebft.WithClients(width), // pipeline depth: 8 logical clients
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client := cluster.Client()
	fmt.Printf("handle pipelines up to %d concurrent requests\n", client.ClientStats().Pipeline)

	// Fire a burst: twice as many operations as the pipeline is wide, so
	// half queue for a free logical client.
	const burst = 2 * width
	results := make([]<-chan saebft.Result, burst)
	for i := 0; i < burst; i++ {
		op, err := saebft.EncodeOp("kv", "put", fmt.Sprintf("user-%02d", i), fmt.Sprintf("session-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		results[i] = client.InvokeAsync(ctx, op)
	}
	fmt.Printf("burst of %d writes admitted; %d in flight right now\n", burst, client.ClientStats().InFlight)

	for i, ch := range results {
		if res := <-ch; res.Err != nil {
			log.Fatalf("write %d: %v", i, res.Err)
		}
	}
	fmt.Printf("all %d writes certified; peak concurrency %d\n", burst, client.ClientStats().MaxInFlight)

	// A crashed executor mid-burst costs nothing but a retransmission:
	// g+1 correct executors still certify every reply.
	if err := cluster.CrashExec(0); err != nil {
		log.Fatal(err)
	}
	second := make([]<-chan saebft.Result, burst)
	for i := 0; i < burst; i++ {
		op, _ := saebft.EncodeOp("kv", "put", fmt.Sprintf("user-%02d", i), "revalidated")
		second[i] = client.InvokeAsync(ctx, op)
	}
	for i, ch := range second {
		if res := <-ch; res.Err != nil {
			log.Fatalf("write %d after crash: %v", i, res.Err)
		}
	}
	fmt.Printf("second burst of %d writes certified with an executor down\n", burst)

	// Audit sequentially through the same handle.
	for i := 0; i < burst; i++ {
		op, _ := saebft.EncodeOp("kv", "get", fmt.Sprintf("user-%02d", i))
		reply, err := client.Invoke(ctx, op)
		if err != nil {
			log.Fatalf("audit %d: %v", i, err)
		}
		if string(reply) != "revalidated" {
			log.Fatalf("user-%02d = %q, want %q", i, reply, "revalidated")
		}
	}
	fmt.Printf("audit passed: %d keys verified through one context-aware handle\n", burst)
}
