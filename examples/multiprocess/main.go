// multiprocess: run a full deployment over real TCP on loopback — the same
// node wiring the saebft-node/saebft-client commands use across OS
// processes, here launched from one main for a self-contained demo.
//
// Every node gets its own TCP listener, its own runtime goroutine, and
// communicates only via sockets; nothing is shared in memory. The first
// half drives the one-line TCPTransport form — over mutual TLS, every link
// authenticated and encrypted with ephemeral per-node certificates; the
// second half does the same thing through an explicit config + minted
// certificate files + per-node Start + Dial, exactly what the command-line
// tools do across processes (see cmd/saebft-keygen and docs/DEPLOYMENT.md)
// — with durable storage: it stops EVERY node of the running cluster,
// restarts them from their data directories, and shows the service resume
// with its state intact. With real processes the equivalent is:
//
//	saebft-keygen -out cluster.json -tls -tls-dir certs
//	saebft-node -config cluster.json -id 0 -data-dir /var/lib/saebft
//	# ... one per identity, then: kill -9 them all, restart the same
//	# commands, and the cluster recovers (WAL replay + checkpoint restore).
//
//	go run ./examples/multiprocess
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	"repro/saebft"
)

func main() {
	ctx := context.Background()

	// --- Form 1: a mutual-TLS TCP cluster in one call -------------------
	// Ephemeral TLS mints an in-memory cluster CA and one certificate per
	// node at Start; every link is then TLS 1.3 with both ends
	// authenticated and bound to their node identity.
	cluster, err := saebft.NewCluster(
		saebft.WithMode(saebft.ModeSeparate),
		saebft.WithApp("kv"),
		saebft.WithTransport(saebft.TCPTransport()),
		saebft.WithTLS(saebft.TLSConfig{Ephemeral: true}),
		saebft.WithThresholdBits(512),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(ctx); err != nil {
		log.Fatal(err)
	}
	client := cluster.Client()

	put := func(k, v string) {
		op, err := saebft.EncodeOp("kv", "put", k, v)
		if err != nil {
			log.Fatal(err)
		}
		reply, err := client.Invoke(ctx, op)
		if err != nil {
			log.Fatalf("put %s: %v", k, err)
		}
		fmt.Printf("put %-10s → %s\n", k, reply)
	}
	get := func(k string) {
		op, err := saebft.EncodeOp("kv", "get", k)
		if err != nil {
			log.Fatal(err)
		}
		reply, err := client.Invoke(ctx, op)
		if err != nil {
			log.Fatalf("get %s: %v", k, err)
		}
		fmt.Printf("get %-10s → %s\n", k, reply)
	}

	put("paper", "SOSP 2003")
	put("authors", "Yin, Martin, Venkataramani, Alvisi, Dahlin")
	get("paper")
	get("authors")
	if stats, err := cluster.Stats(); err == nil {
		fmt.Printf("link stats: %d authenticated handshakes, %d frames sent, %d rejects\n",
			stats.Link.Handshakes, stats.Link.FramesSent, stats.Link.AuthRejects+stats.Link.HandshakeFailures)
	}
	cluster.Close()
	fmt.Println("all operations certified by g+1 execution replicas over mutual-TLS TCP")

	// --- Form 2: explicit config + nodes + Dial (the cmd/ tool path) ----
	// GenerateConfig with TLSDir is what `saebft-keygen -tls` runs: it
	// mints a cluster CA plus per-identity certificate files and records
	// their paths in the config.
	certDir, err := os.MkdirTemp("", "saebft-multiprocess-certs-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(certDir)
	cfg, err := saebft.GenerateConfig(saebft.DeployParams{
		Mode:          saebft.ModeSeparate,
		App:           "counter",
		Seed:          "multiprocess-demo",
		ThresholdBits: 512,
		TLSDir:        certDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	nodes, err := cfg.Nodes()
	if err != nil {
		log.Fatal(err)
	}
	// Swap the static port plan for free loopback ports so the demo never
	// collides with a busy port.
	for _, n := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		if err := cfg.SetAddr(n.ID, ln.Addr().String()); err != nil {
			log.Fatal(err)
		}
		ln.Close()
	}

	// Every node persists a WAL + checkpoint store under its own
	// <dataDir>/node-<id>; this is what `saebft-node -data-dir` wires up.
	dataDir, err := os.MkdirTemp("", "saebft-multiprocess-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)

	startAll := func() []*saebft.Node {
		var running []*saebft.Node
		for _, ni := range nodes {
			if ni.Role == "client" {
				continue
			}
			n, err := saebft.NewNode(cfg, ni.ID, saebft.NodeDataDir(dataDir))
			if err != nil {
				log.Fatal(err)
			}
			if err := n.Start(ctx); err != nil {
				log.Fatalf("node %d: %v", ni.ID, err)
			}
			running = append(running, n)
			link := "tcp"
			if n.Secure() {
				link = "mTLS"
			}
			fmt.Printf("started %-9s node %-4d on %s (%s)\n", n.Role(), n.ID(), n.Addr(), link)
		}
		return running
	}
	running := startAll()

	// Write the descriptor out and dial it by path — byte-for-byte what
	// `saebft-client -config cluster.json` does from another process.
	cfgPath := filepath.Join(dataDir, "cluster.json")
	if err := cfg.Save(cfgPath); err != nil {
		log.Fatal(err)
	}
	dialed, err := saebft.Dial(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	for _, op := range []string{"inc", "add 41"} {
		reply, err := dialed.Invoke(ctx, []byte(op))
		if err != nil {
			log.Fatalf("%s: %v", op, err)
		}
		fmt.Printf("%-8s → %s\n", op, reply)
	}
	// Read-only operations can skip the agreement round entirely: the
	// execution replicas answer directly, and g+1 matching signed answers
	// at the session watermark certify the result (read-your-writes with
	// respect to the invokes above).
	reply, err := dialed.ReadCertified(ctx, []byte("get"))
	if err != nil {
		log.Fatalf("get: %v", err)
	}
	fmt.Printf("%-8s → %s (certified fast read)\n", "get", reply)
	dialed.Close()

	// --- Full-cluster restart: stop every node, bring them all back ----
	// from their data directories. The counter resumes at 42 — nothing
	// acknowledged is lost, nothing is executed twice.
	fmt.Println("stopping every node (full-cluster outage)...")
	for _, n := range running {
		n.Close()
	}
	fmt.Println("restarting all nodes from their data directories...")
	running = startAll()
	defer func() {
		for _, n := range running {
			n.Close()
		}
	}()
	// DialConfig is the same surface for a descriptor already in memory.
	dialed, err = saebft.DialConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer dialed.Close()
	for _, op := range []string{"get", "inc"} {
		reply, err := dialed.Invoke(ctx, []byte(op))
		if err != nil {
			log.Fatalf("%s after restart: %v", op, err)
		}
		fmt.Printf("%-8s → %s (post-recovery)\n", op, reply)
	}
	fmt.Println("state survived a restart of every node in the deployment — over mutual TLS throughout")
}
