// multiprocess: run a full deployment over real TCP on loopback — the same
// node wiring the saebft-node/saebft-client commands use across OS
// processes, here launched from one main for a self-contained demo.
//
// Every node gets its own TCP listener, its own runtime goroutine, and
// communicates only via sockets; nothing is shared in memory. To run the
// same thing as separate processes, see cmd/saebft-keygen.
//
//	go run ./examples/multiprocess
package main

import (
	"fmt"
	"log"
	"net"
	"strconv"
	"time"

	"repro/internal/apps/kv"
	"repro/internal/deploy"
	"repro/internal/types"
)

func main() {
	cfg, err := deploy.Default("separate", "kv", 0)
	if err != nil {
		log.Fatal(err)
	}
	cfg.ThresholdBits = 512

	// Pick free loopback ports.
	for k := range cfg.Addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		cfg.Addrs[k] = ln.Addr().String()
		ln.Close()
	}

	// Start every replica "process".
	var nodes []*deploy.RunningNode
	for k := range cfg.Addrs {
		idInt, _ := strconv.Atoi(k)
		id := types.NodeID(idInt)
		if id >= 1000 {
			continue // clients below
		}
		n, err := deploy.StartNode(cfg, id)
		if err != nil {
			log.Fatalf("node %v: %v", id, err)
		}
		n.Net.SetLogf(func(string, ...interface{}) {})
		nodes = append(nodes, n)
		fmt.Printf("started %-9s node %-4d on %s\n", n.Role, id, n.Net.Addr())
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	client, err := deploy.NewTCPClient(cfg, 1000)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.SetQuiet()

	put := func(k, v string) {
		reply, err := client.Call(kv.Put(k, []byte(v)), 15*time.Second)
		if err != nil {
			log.Fatalf("put %s: %v", k, err)
		}
		fmt.Printf("put %-10s → %s\n", k, reply)
	}
	get := func(k string) {
		reply, err := client.Call(kv.GetOp(k), 15*time.Second)
		if err != nil {
			log.Fatalf("get %s: %v", k, err)
		}
		fmt.Printf("get %-10s → %s\n", k, reply)
	}

	put("paper", "SOSP 2003")
	put("authors", "Yin, Martin, Venkataramani, Alvisi, Dahlin")
	get("paper")
	get("authors")

	reply, err := client.Call(kv.List(""), 15*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("list           → %q\n", reply)
	fmt.Println("all operations certified by g+1 execution replicas over real TCP")
}
