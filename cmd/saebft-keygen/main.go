// Command saebft-keygen writes a cluster configuration file for a
// multi-process deployment. All protocol key material is derived from the
// config's seed, so the file acts as the trusted dealer's output:
// distribute it only to machines that will run nodes, and treat it as
// secret. With -tls it additionally mints a cluster CA plus a mutual-TLS
// certificate pair for every identity (clients included) and records the
// paths in the config, so every link of the deployment comes up
// authenticated and encrypted.
//
// Usage:
//
//	saebft-keygen -out cluster.json -mode firewall -app kv -port 7000 -tls
//
// Then start each node in its own process:
//
//	saebft-node -config cluster.json -id 0      # agreement replica
//	saebft-node -config cluster.json -id 100    # execution replica
//	saebft-node -config cluster.json -id 200    # firewall filter
//	saebft-client -config cluster.json -id 1000 put greeting hello
//
// See docs/DEPLOYMENT.md for the multi-machine walkthrough.
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/saebft"
)

func main() {
	var (
		out  = flag.String("out", "cluster.json", "output config path")
		mode = flag.String("mode", "separate", "architecture: base, separate, firewall")
		app  = flag.String("app", "kv", "application: "+strings.Join(saebft.Apps(), ", "))
		port = flag.Int("port", 7000, "first TCP port; nodes use consecutive ports")
		host = flag.String("host", "127.0.0.1", "address every identity is assigned; edit the addrs map in the written config for multi-machine layouts")
		seed = flag.String("seed", "", "key material seed (default: random)")
		f    = flag.Int("f", 1, "tolerated agreement faults (3f+1 replicas)")
		g    = flag.Int("g", 1, "tolerated execution faults (2g+1 replicas)")
		// Named -filter-faults rather than -h so `saebft-keygen -h`
		// keeps printing flag's conventional help.
		h             = flag.Int("filter-faults", 1, "tolerated filter faults h per row (firewall mode)")
		clients       = flag.Int("clients", 2, "number of client identities")
		batch         = flag.Int("batch", 8, "agreement batch (reply bundle) size")
		thresholdBits = flag.Int("threshold-bits", 1024, "threshold RSA modulus size")
		crypto        = flag.String("crypto", "ed25519", "agreement-vote authenticators: ed25519 (transferable signatures) or mac (pairwise MAC vectors on prepare/commit traffic; view changes stay signed)")
		useTLS        = flag.Bool("tls", false, "mint a cluster CA + per-identity mutual-TLS certificates and record them in the config")
		tlsDir        = flag.String("tls-dir", "certs", "directory for the minted TLS material (keep it next to the config file)")
	)
	flag.Parse()

	m, err := saebft.ParseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-keygen:", err)
		os.Exit(2)
	}
	keySeed := *seed
	if keySeed == "" {
		var b [16]byte
		if _, err := rand.Read(b[:]); err != nil {
			fmt.Fprintln(os.Stderr, "saebft-keygen:", err)
			os.Exit(1)
		}
		keySeed = fmt.Sprintf("%x", b)
	}

	params := saebft.DeployParams{
		Mode:          m,
		App:           *app,
		Seed:          keySeed,
		F:             *f,
		G:             *g,
		H:             *h,
		Clients:       *clients,
		BatchSize:     *batch,
		ThresholdBits: *thresholdBits,
		Crypto:        *crypto,
		BasePort:      *port,
		Host:          *host,
	}
	cfg, err := saebft.GenerateConfig(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-keygen:", err)
		os.Exit(1)
	}
	if *useTLS {
		// Certs are written next to the config file, so -out into another
		// directory keeps the config and its material together.
		if err := cfg.GenerateTLSFor(*out, *tlsDir); err != nil {
			fmt.Fprintln(os.Stderr, "saebft-keygen:", err)
			os.Exit(1)
		}
	}
	if err := cfg.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "saebft-keygen:", err)
		os.Exit(1)
	}
	// Report the effective values from the generated config, which may
	// differ from raw flags (GenerateConfig defaults zeros).
	security := "plaintext links (pass -tls for mutual TLS)"
	if cfg.TLSEnabled() {
		security = "mutual-TLS links, material under " + *tlsDir
	}
	fmt.Printf("wrote %s (%s/%s, f=%d g=%d h=%d, %d clients, %s)\n",
		*out, cfg.Mode(), cfg.App(), cfg.F(), cfg.G(), cfg.H(), cfg.Clients(), security)
	fmt.Println("node identities and addresses:")
	nodes, err := cfg.Nodes()
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-keygen:", err)
		os.Exit(1)
	}
	for _, n := range nodes {
		fmt.Printf("  %-6d %s  (%s)\n", n.ID, n.Addr, n.Role)
	}
}
