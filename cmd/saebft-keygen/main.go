// Command saebft-keygen writes a cluster configuration file for a
// multi-process deployment. All key material is derived from the config's
// seed, so the file acts as the trusted dealer's output: distribute it only
// to machines that will run nodes, and treat it as secret.
//
// Usage:
//
//	saebft-keygen -out cluster.json -mode firewall -app kv -port 7000
//
// Then start each node in its own process:
//
//	saebft-node -config cluster.json -id 0      # agreement replica
//	saebft-node -config cluster.json -id 100    # execution replica
//	saebft-node -config cluster.json -id 200    # firewall filter
//	saebft-client -config cluster.json -id 1000 put greeting hello
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"repro/internal/deploy"
)

func main() {
	var (
		out           = flag.String("out", "cluster.json", "output config path")
		mode          = flag.String("mode", "separate", "architecture: base, separate, firewall")
		app           = flag.String("app", "kv", "application: kv, counter, nfs, null")
		port          = flag.Int("port", 7000, "first TCP port; nodes use consecutive ports")
		seed          = flag.String("seed", "", "key material seed (default: random)")
		clients       = flag.Int("clients", 2, "number of client identities")
		batch         = flag.Int("batch", 8, "agreement batch (reply bundle) size")
		thresholdBits = flag.Int("threshold-bits", 1024, "threshold RSA modulus size")
	)
	flag.Parse()

	cfg, err := deploy.Default(*mode, *app, *port)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-keygen:", err)
		os.Exit(1)
	}
	if *seed != "" {
		cfg.Seed = *seed
	} else {
		var b [16]byte
		if _, err := rand.Read(b[:]); err != nil {
			fmt.Fprintln(os.Stderr, "saebft-keygen:", err)
			os.Exit(1)
		}
		cfg.Seed = fmt.Sprintf("%x", b)
	}
	cfg.Clients = *clients
	cfg.BatchSize = *batch
	cfg.ThresholdBits = *thresholdBits

	if err := cfg.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "saebft-keygen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%s/%s, f=%d g=%d h=%d, %d clients)\n",
		*out, cfg.Mode, cfg.App, cfg.F, cfg.G, cfg.H, cfg.Clients)
	fmt.Println("node identities and addresses:")
	keys := make([]int, 0, len(cfg.Addrs))
	for k := range cfg.Addrs {
		n, _ := strconv.Atoi(k)
		keys = append(keys, n)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Printf("  %-6d %s  (%s)\n", k, cfg.Addrs[strconv.Itoa(k)], roleName(k))
	}
}

func roleName(id int) string {
	switch {
	case id < 100:
		return "agreement"
	case id < 200:
		return "execution"
	case id < 1000:
		return "filter"
	default:
		return "client"
	}
}
