// Command saebft-node runs one replica — agreement, execution, or privacy
// firewall filter — as its own OS process, communicating over TCP with the
// rest of the deployment described by the shared config file.
//
//	saebft-node -config cluster.json -id 0
//
// The node's role is determined by its identity in the config topology. The
// process runs until interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/deploy"
	"repro/internal/types"
)

func main() {
	var (
		cfgPath = flag.String("config", "cluster.json", "cluster config file (from saebft-keygen)")
		id      = flag.Int("id", -1, "node identity to run")
		quiet   = flag.Bool("quiet", false, "suppress transport logging")
	)
	flag.Parse()
	if *id < 0 {
		fmt.Fprintln(os.Stderr, "saebft-node: -id is required")
		os.Exit(2)
	}
	cfg, err := deploy.Load(*cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-node:", err)
		os.Exit(1)
	}
	node, err := deploy.StartNode(cfg, types.NodeID(*id))
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-node:", err)
		os.Exit(1)
	}
	if *quiet {
		node.Net.SetLogf(func(string, ...interface{}) {})
	}
	fmt.Printf("saebft-node: %s replica %d listening on %s (%s/%s)\n",
		node.Role, *id, node.Net.Addr(), cfg.Mode, cfg.App)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("saebft-node: shutting down")
	node.Close()
}
