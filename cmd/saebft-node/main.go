// Command saebft-node runs one replica — agreement, execution, or privacy
// firewall filter — as its own OS process, communicating over TCP with the
// rest of the deployment described by the shared config file.
//
//	saebft-node -config cluster.json -id 0
//
// The node's role is determined by its identity in the config topology. The
// process runs until interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/saebft"
)

func main() {
	var (
		cfgPath       = flag.String("config", "cluster.json", "cluster config file (from saebft-keygen)")
		id            = flag.Int("id", -1, "node identity to run")
		dataDir       = flag.String("data-dir", "", "durable storage root; the node persists its WAL and checkpoints under <data-dir>/node-<id> and recovers from them on restart (empty = in-memory)")
		volatileVotes = flag.Bool("volatile-votes", false, "skip agreement voting-state durability (votes, prepared certificates, view transitions): fewer WAL syncs, but a replica recovering under a Byzantine primary counts against f until rejoined")
		verbose       = flag.Bool("verbose", false, "log transport-level connection events")
		useTLS        = flag.Bool("tls", false, "require mutual-TLS links; -tls=false forces plaintext. Default: follow the config (TLS exactly when it has a tls section)")
		caFile        = flag.String("ca", "", "cluster CA certificate (PEM); default: the config's tls.ca")
		certFile      = flag.String("cert", "", "this node's certificate (PEM); default: <tls.certDir>/node-<id>.pem from the config")
		keyFile       = flag.String("key", "", "this node's private key (PEM); default: <tls.certDir>/node-<id>-key.pem from the config")
		statsEvery    = flag.Duration("stats-every", 0, "log a metrics heartbeat (protocol, storage, and link series from the node's registry) at this interval (0 = off); see docs/DEPLOYMENT.md troubleshooting")
		metricsAddr   = flag.String("metrics-addr", "", "serve the ops HTTP endpoint on this address: Prometheus text on /metrics, the trace ring on /debug/trace, pprof under /debug/pprof/ (empty = off); bind it operator-side, not publicly")
		verifyWorkers = flag.Int("verify-workers", 0, "fan batch certificate checks (client requests, order/commit certificates) out over this many workers; 0 or 1 verifies inline. Per-process tuning — nodes need not agree. The agreement-vote crypto mode itself lives in the shared config (crypto: \"mac\" or \"ed25519\")")
	)
	flag.Parse()
	if *id < 0 {
		fmt.Fprintln(os.Stderr, "saebft-node: -id is required")
		os.Exit(2)
	}
	cfg, err := saebft.LoadConfig(*cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-node:", err)
		os.Exit(1)
	}
	var nodeOpts []saebft.NodeOption
	if *dataDir != "" {
		nodeOpts = append(nodeOpts, saebft.NodeDataDir(*dataDir))
		if *volatileVotes {
			nodeOpts = append(nodeOpts, saebft.NodeVolatileVotes())
		}
	}
	tlsOpts, err := tlsNodeOptions(cfg, *id, *useTLS, tlsFlagSet(), *caFile, *certFile, *keyFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-node:", err)
		os.Exit(1)
	}
	nodeOpts = append(nodeOpts, tlsOpts...)
	if *metricsAddr != "" {
		nodeOpts = append(nodeOpts, saebft.NodeMetricsAddr(*metricsAddr))
	}
	if *verifyWorkers > 1 {
		nodeOpts = append(nodeOpts, saebft.NodeVerifyWorkers(*verifyWorkers))
	}
	node, err := saebft.NewNode(cfg, *id, nodeOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-node:", err)
		os.Exit(1)
	}
	if *verbose {
		node.SetLogf(log.Printf)
	}

	// Signal-driven graceful shutdown: SIGINT/SIGTERM cancel the context
	// rather than killing the process mid-write, so Close can flush the
	// WAL and close the transports. A second signal (the context is no
	// longer intercepting after stop) kills the process the hard way —
	// which durable nodes survive too, by recovering on the next start.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := node.Start(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "saebft-node:", err)
		os.Exit(1)
	}
	durability := "in-memory"
	if *dataDir != "" {
		durability = "durable: " + *dataDir
	}
	links := "plaintext links"
	if node.Secure() {
		links = "mutual-TLS links"
	}
	fmt.Printf("saebft-node: %s replica %d listening on %s (%s/%s, %s, %s)\n",
		node.Role(), node.ID(), node.Addr(), cfg.Mode(), cfg.App(), durability, links)
	if addr := node.OpsAddr(); addr != "" {
		fmt.Printf("saebft-node: ops endpoint on http://%s (/metrics, /debug/trace, /debug/pprof/)\n", addr)
	}

	if *statsEvery > 0 {
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-time.After(*statsEvery):
				}
				log.Printf("saebft-node: %s", statsLine(node))
			}
		}()
	}

	// A replica whose store fails stops executing (fail-stop) but keeps
	// its sockets open; poll and say so loudly instead of hanging mute.
	if *dataDir != "" {
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-time.After(5 * time.Second):
				}
				if err := node.StorageErr(); err != nil {
					log.Printf("saebft-node: STORAGE FAILURE, replica halted (fail-stop): %v", err)
					return
				}
			}
		}()
	}

	<-ctx.Done()
	stop() // restore default signal handling: a second signal force-kills
	fmt.Println("saebft-node: shutting down (flushing WAL and checkpoints)")
	node.Close()
}

// statsLine renders the operator heartbeat from the node's metrics
// registry — the same series /metrics serves, so the log line and a scrape
// can never disagree. Series absent for the node's role are skipped;
// per-peer and per-phase labels are summed away.
func statsLine(node *saebft.Node) string {
	keys := []string{
		"saebft_pbft_batches_total",
		"saebft_pbft_requests_total",
		"saebft_pbft_view",
		"saebft_pbft_view_changes_total",
		"saebft_exec_batches_total",
		"saebft_exec_requests_total",
		"saebft_exec_reads_served_total",
		"saebft_wal_fsync_seconds_count",
		"saebft_wal_segments",
		"saebft_link_frames_sent_total",
		"saebft_link_frames_received_total",
		"saebft_link_frames_dropped_total",
		"saebft_link_reconnects_total",
		"saebft_link_auth_rejects_total",
	}
	totals := make(map[string]float64)
	for _, m := range node.Metrics() {
		totals[m.Name] += m.Value
	}
	var b strings.Builder
	for _, name := range keys {
		v, ok := totals[name]
		if !ok {
			continue
		}
		short := strings.TrimSuffix(strings.TrimPrefix(name, "saebft_"), "_total")
		fmt.Fprintf(&b, " %s=%.0f", short, v)
	}
	return strings.TrimSpace(b.String())
}

// tlsFlagSet reports whether -tls was given explicitly (so -tls=false can
// force plaintext while an absent flag follows the config).
func tlsFlagSet() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "tls" {
			set = true
		}
	})
	return set
}

// tlsNodeOptions maps the shared saebft.TLSFlags resolution onto node
// options.
func tlsNodeOptions(cfg *saebft.Config, id int, useTLS, tlsSet bool, ca, cert, key string) ([]saebft.NodeOption, error) {
	flags := saebft.TLSFlags{TLS: useTLS, TLSSet: tlsSet, CA: ca, Cert: cert, Key: key}
	rca, rcert, rkey, insecure, err := flags.Resolve(cfg, id)
	switch {
	case err != nil:
		return nil, err
	case insecure:
		return []saebft.NodeOption{saebft.NodeInsecure()}, nil
	case rca != "":
		return []saebft.NodeOption{saebft.NodeTLS(rca, rcert, rkey)}, nil
	default:
		return nil, nil // config-driven: TLS exactly when the config prescribes it
	}
}
