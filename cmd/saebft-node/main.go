// Command saebft-node runs one replica — agreement, execution, or privacy
// firewall filter — as its own OS process, communicating over TCP with the
// rest of the deployment described by the shared config file.
//
//	saebft-node -config cluster.json -id 0
//
// The node's role is determined by its identity in the config topology. The
// process runs until interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/saebft"
)

func main() {
	var (
		cfgPath       = flag.String("config", "cluster.json", "cluster config file (from saebft-keygen)")
		id            = flag.Int("id", -1, "node identity to run")
		dataDir       = flag.String("data-dir", "", "durable storage root; the node persists its WAL and checkpoints under <data-dir>/node-<id> and recovers from them on restart (empty = in-memory)")
		volatileVotes = flag.Bool("volatile-votes", false, "skip agreement voting-state durability (votes, prepared certificates, view transitions): fewer WAL syncs, but a replica recovering under a Byzantine primary counts against f until rejoined")
		verbose       = flag.Bool("verbose", false, "log transport-level connection events")
		useTLS        = flag.Bool("tls", false, "require mutual-TLS links; -tls=false forces plaintext. Default: follow the config (TLS exactly when it has a tls section)")
		caFile        = flag.String("ca", "", "cluster CA certificate (PEM); default: the config's tls.ca")
		certFile      = flag.String("cert", "", "this node's certificate (PEM); default: <tls.certDir>/node-<id>.pem from the config")
		keyFile       = flag.String("key", "", "this node's private key (PEM); default: <tls.certDir>/node-<id>-key.pem from the config")
		statsEvery    = flag.Duration("stats-every", 0, "log transport link counters at this interval (0 = off); see docs/DEPLOYMENT.md troubleshooting")
	)
	flag.Parse()
	if *id < 0 {
		fmt.Fprintln(os.Stderr, "saebft-node: -id is required")
		os.Exit(2)
	}
	cfg, err := saebft.LoadConfig(*cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-node:", err)
		os.Exit(1)
	}
	var nodeOpts []saebft.NodeOption
	if *dataDir != "" {
		nodeOpts = append(nodeOpts, saebft.NodeDataDir(*dataDir))
		if *volatileVotes {
			nodeOpts = append(nodeOpts, saebft.NodeVolatileVotes())
		}
	}
	tlsOpts, err := tlsNodeOptions(cfg, *id, *useTLS, tlsFlagSet(), *caFile, *certFile, *keyFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-node:", err)
		os.Exit(1)
	}
	nodeOpts = append(nodeOpts, tlsOpts...)
	node, err := saebft.NewNode(cfg, *id, nodeOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-node:", err)
		os.Exit(1)
	}
	if *verbose {
		node.SetLogf(log.Printf)
	}

	// Signal-driven graceful shutdown: SIGINT/SIGTERM cancel the context
	// rather than killing the process mid-write, so Close can flush the
	// WAL and close the transports. A second signal (the context is no
	// longer intercepting after stop) kills the process the hard way —
	// which durable nodes survive too, by recovering on the next start.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := node.Start(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "saebft-node:", err)
		os.Exit(1)
	}
	durability := "in-memory"
	if *dataDir != "" {
		durability = "durable: " + *dataDir
	}
	links := "plaintext links"
	if node.Secure() {
		links = "mutual-TLS links"
	}
	fmt.Printf("saebft-node: %s replica %d listening on %s (%s/%s, %s, %s)\n",
		node.Role(), node.ID(), node.Addr(), cfg.Mode(), cfg.App(), durability, links)

	if *statsEvery > 0 {
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-time.After(*statsEvery):
				}
				s := node.LinkStats()
				log.Printf("saebft-node: links: dials=%d dialFail=%d handshakes=%d hsFail=%d authRej=%d reconnects=%d sent=%d recv=%d dropped=%d",
					s.Dials, s.DialFailures, s.Handshakes, s.HandshakeFailures, s.AuthRejects,
					s.Reconnects, s.FramesSent, s.FramesReceived, s.FramesDropped)
			}
		}()
	}

	// A replica whose store fails stops executing (fail-stop) but keeps
	// its sockets open; poll and say so loudly instead of hanging mute.
	if *dataDir != "" {
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-time.After(5 * time.Second):
				}
				if err := node.StorageErr(); err != nil {
					log.Printf("saebft-node: STORAGE FAILURE, replica halted (fail-stop): %v", err)
					return
				}
			}
		}()
	}

	<-ctx.Done()
	stop() // restore default signal handling: a second signal force-kills
	fmt.Println("saebft-node: shutting down (flushing WAL and checkpoints)")
	node.Close()
}

// tlsFlagSet reports whether -tls was given explicitly (so -tls=false can
// force plaintext while an absent flag follows the config).
func tlsFlagSet() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "tls" {
			set = true
		}
	})
	return set
}

// tlsNodeOptions maps the shared saebft.TLSFlags resolution onto node
// options.
func tlsNodeOptions(cfg *saebft.Config, id int, useTLS, tlsSet bool, ca, cert, key string) ([]saebft.NodeOption, error) {
	flags := saebft.TLSFlags{TLS: useTLS, TLSSet: tlsSet, CA: ca, Cert: cert, Key: key}
	rca, rcert, rkey, insecure, err := flags.Resolve(cfg, id)
	switch {
	case err != nil:
		return nil, err
	case insecure:
		return []saebft.NodeOption{saebft.NodeInsecure()}, nil
	case rca != "":
		return []saebft.NodeOption{saebft.NodeTLS(rca, rcert, rkey)}, nil
	default:
		return nil, nil // config-driven: TLS exactly when the config prescribes it
	}
}
