// Command saebft-node runs one replica — agreement, execution, or privacy
// firewall filter — as its own OS process, communicating over TCP with the
// rest of the deployment described by the shared config file.
//
//	saebft-node -config cluster.json -id 0
//
// The node's role is determined by its identity in the config topology. The
// process runs until interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/saebft"
)

func main() {
	var (
		cfgPath = flag.String("config", "cluster.json", "cluster config file (from saebft-keygen)")
		id      = flag.Int("id", -1, "node identity to run")
		verbose = flag.Bool("verbose", false, "log transport-level connection events")
	)
	flag.Parse()
	if *id < 0 {
		fmt.Fprintln(os.Stderr, "saebft-node: -id is required")
		os.Exit(2)
	}
	cfg, err := saebft.LoadConfig(*cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-node:", err)
		os.Exit(1)
	}
	node, err := saebft.NewNode(cfg, *id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-node:", err)
		os.Exit(1)
	}
	if *verbose {
		node.SetLogf(log.Printf)
	}

	// Signal-driven lifecycle: the context's cancellation closes the node.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := node.Start(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "saebft-node:", err)
		os.Exit(1)
	}
	fmt.Printf("saebft-node: %s replica %d listening on %s (%s/%s)\n",
		node.Role(), node.ID(), node.Addr(), cfg.Mode(), cfg.App())

	<-ctx.Done()
	fmt.Println("saebft-node: shutting down")
	node.Close()
}
