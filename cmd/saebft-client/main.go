// Command saebft-client issues operations against a running deployment and
// waits for certified replies (g+1 matching replies or one valid threshold
// signature, depending on the deployment's reply mode).
//
// Key-value deployments (app "kv"):
//
//	saebft-client -config cluster.json put greeting hello
//	saebft-client -config cluster.json get greeting
//	saebft-client -config cluster.json del greeting
//	saebft-client -config cluster.json list prefix/
//
// Counter deployments (app "counter"):
//
//	saebft-client -config cluster.json inc
//	saebft-client -config cluster.json add 41
//	saebft-client -config cluster.json get-count
//
// Any application registered with a CLI encoding (saebft.RegisterAppCLI)
// works the same way.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/saebft"
)

func main() {
	var (
		cfgPath  = flag.String("config", "cluster.json", "cluster config file")
		id       = flag.Int("id", 1000, "client identity")
		timeout  = flag.Duration("timeout", 15*time.Second, "per-request timeout")
		read     = flag.Bool("read", false, "serve the operation through the certified fast read path (falls back to full agreement when it cannot certify)")
		useTLS   = flag.Bool("tls", false, "require mutual-TLS links; -tls=false forces plaintext. Default: follow the config (TLS exactly when it has a tls section)")
		caFile   = flag.String("ca", "", "cluster CA certificate (PEM); default: the config's tls.ca")
		certFile = flag.String("cert", "", "this client identity's certificate (PEM); default: <tls.certDir>/node-<id>.pem from the config")
		keyFile  = flag.String("key", "", "this client identity's private key (PEM); default: <tls.certDir>/node-<id>-key.pem from the config")
	)
	flag.Parse()
	args := flag.Args()
	cfg, err := saebft.LoadConfig(*cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-client:", err)
		os.Exit(1)
	}
	if len(args) == 0 {
		usage := saebft.AppUsage(cfg.App())
		if usage == "" {
			usage = "this app has no CLI encoding"
		}
		fmt.Fprintf(os.Stderr, "saebft-client: no operation given (try: %s)\n", usage)
		os.Exit(2)
	}
	op, err := saebft.EncodeOp(cfg.App(), args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-client:", err)
		os.Exit(2)
	}
	dialOpts := []saebft.DialOption{saebft.DialClients(*id), saebft.DialTimeout(*timeout)}
	tlsOpts, err := tlsDialOptions(cfg, *id, *useTLS, tlsFlagSet(), *caFile, *certFile, *keyFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-client:", err)
		os.Exit(1)
	}
	client, err := saebft.DialConfig(cfg, append(dialOpts, tlsOpts...)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-client:", err)
		os.Exit(1)
	}
	defer client.Close()

	invoke := client.Invoke
	if *read {
		invoke = client.ReadCertified
	}
	reply, err := invoke(context.Background(), op)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-client:", err)
		os.Exit(1)
	}
	fmt.Printf("%s\n", reply)
}

// tlsFlagSet reports whether -tls was given explicitly (so -tls=false can
// force plaintext while an absent flag follows the config).
func tlsFlagSet() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "tls" {
			set = true
		}
	})
	return set
}

// tlsDialOptions maps the shared saebft.TLSFlags resolution onto dial
// options, mirroring saebft-node's semantics for its link material.
func tlsDialOptions(cfg *saebft.Config, id int, useTLS, tlsSet bool, ca, cert, key string) ([]saebft.DialOption, error) {
	flags := saebft.TLSFlags{TLS: useTLS, TLSSet: tlsSet, CA: ca, Cert: cert, Key: key}
	rca, rcert, rkey, insecure, err := flags.Resolve(cfg, id)
	switch {
	case err != nil:
		return nil, err
	case insecure:
		return []saebft.DialOption{saebft.DialInsecure()}, nil
	case rca != "":
		return []saebft.DialOption{saebft.DialTLS(rca, rcert, rkey)}, nil
	default:
		return nil, nil
	}
}
