// Command saebft-client issues operations against a running deployment and
// waits for certified replies (g+1 matching replies or one valid threshold
// signature, depending on the deployment's reply mode).
//
// Key-value deployments (app "kv"):
//
//	saebft-client -config cluster.json put greeting hello
//	saebft-client -config cluster.json get greeting
//	saebft-client -config cluster.json del greeting
//	saebft-client -config cluster.json list prefix/
//
// Counter deployments (app "counter"):
//
//	saebft-client -config cluster.json inc
//	saebft-client -config cluster.json add 41
//	saebft-client -config cluster.json get-count
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps/kv"
	"repro/internal/deploy"
	"repro/internal/types"
)

func main() {
	var (
		cfgPath = flag.String("config", "cluster.json", "cluster config file")
		id      = flag.Int("id", 1000, "client identity")
		timeout = flag.Duration("timeout", 15*time.Second, "per-request timeout")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "saebft-client: no operation given (try: put K V | get K | del K | list P | cas K OLD NEW | inc | add N | get-count)")
		os.Exit(2)
	}
	cfg, err := deploy.Load(*cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-client:", err)
		os.Exit(1)
	}
	op, err := encodeOp(cfg.App, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-client:", err)
		os.Exit(2)
	}
	client, err := deploy.NewTCPClient(cfg, types.NodeID(*id))
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-client:", err)
		os.Exit(1)
	}
	defer client.Close()
	client.SetQuiet()

	reply, err := client.Call(op, *timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-client:", err)
		os.Exit(1)
	}
	fmt.Printf("%s\n", reply)
}

// encodeOp maps command-line words to application operations.
func encodeOp(app string, args []string) ([]byte, error) {
	switch app {
	case "kv", "":
		switch args[0] {
		case "put":
			if len(args) != 3 {
				return nil, fmt.Errorf("usage: put KEY VALUE")
			}
			return kv.Put(args[1], []byte(args[2])), nil
		case "get":
			if len(args) != 2 {
				return nil, fmt.Errorf("usage: get KEY")
			}
			return kv.GetOp(args[1]), nil
		case "del":
			if len(args) != 2 {
				return nil, fmt.Errorf("usage: del KEY")
			}
			return kv.Del(args[1]), nil
		case "list":
			prefix := ""
			if len(args) > 1 {
				prefix = args[1]
			}
			return kv.List(prefix), nil
		case "cas":
			if len(args) != 4 {
				return nil, fmt.Errorf("usage: cas KEY OLD NEW")
			}
			return kv.CAS(args[1], []byte(args[2]), []byte(args[3])), nil
		default:
			return nil, fmt.Errorf("unknown kv operation %q", args[0])
		}
	case "counter":
		switch args[0] {
		case "inc":
			return []byte("inc"), nil
		case "add":
			if len(args) != 2 {
				return nil, fmt.Errorf("usage: add N")
			}
			return []byte("add " + args[1]), nil
		case "get-count", "get":
			return []byte("get"), nil
		default:
			return nil, fmt.Errorf("unknown counter operation %q", args[0])
		}
	default:
		return nil, fmt.Errorf("no CLI encoding for app %q; drive it programmatically", app)
	}
}
