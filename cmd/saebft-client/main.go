// Command saebft-client issues operations against a running deployment and
// waits for certified replies (g+1 matching replies or one valid threshold
// signature, depending on the deployment's reply mode).
//
// Key-value deployments (app "kv"):
//
//	saebft-client -config cluster.json put greeting hello
//	saebft-client -config cluster.json get greeting
//	saebft-client -config cluster.json del greeting
//	saebft-client -config cluster.json list prefix/
//
// Counter deployments (app "counter"):
//
//	saebft-client -config cluster.json inc
//	saebft-client -config cluster.json add 41
//	saebft-client -config cluster.json get-count
//
// Any application registered with a CLI encoding (saebft.RegisterAppCLI)
// works the same way.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/saebft"
)

func main() {
	var (
		cfgPath = flag.String("config", "cluster.json", "cluster config file")
		id      = flag.Int("id", 1000, "client identity")
		timeout = flag.Duration("timeout", 15*time.Second, "per-request timeout")
	)
	flag.Parse()
	args := flag.Args()
	cfg, err := saebft.LoadConfig(*cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-client:", err)
		os.Exit(1)
	}
	if len(args) == 0 {
		usage := saebft.AppUsage(cfg.App())
		if usage == "" {
			usage = "this app has no CLI encoding"
		}
		fmt.Fprintf(os.Stderr, "saebft-client: no operation given (try: %s)\n", usage)
		os.Exit(2)
	}
	op, err := saebft.EncodeOp(cfg.App(), args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-client:", err)
		os.Exit(2)
	}
	client, err := saebft.Dial(cfg, saebft.DialClients(*id), saebft.DialTimeout(*timeout))
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-client:", err)
		os.Exit(1)
	}
	defer client.Close()

	reply, err := client.Invoke(context.Background(), op)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saebft-client:", err)
		os.Exit(1)
	}
	fmt.Printf("%s\n", reply)
}
