// saebft-lint machine-checks the BFT safety invariants the codebase
// otherwise enforces by convention: sync-before-send durability ordering,
// replica determinism, verification gating, lock discipline, and the
// public-API import boundary. It is pure stdlib — go/parser and go/types
// over `go list -json -export` output — so CI runs it with no network
// dependencies.
//
// Usage:
//
//	saebft-lint [-json] [-checks list] [-v] [packages]
//
// Packages default to ./... resolved from the current directory. Exit
// status is 0 when the tree is clean, 1 on unsuppressed findings, 2 when
// loading or type-checking fails. Findings are suppressed only by an
// explicit annotation on or directly above the offending line:
//
//	//lint:allow <check> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis" //lint:allow boundary saebft-lint is the repository's own toolchain, not an API embedder; its driver is deliberately internal
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the versioned JSON findings report instead of text")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	verbose := flag.Bool("v", false, "also print suppressed findings with their reasons")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: saebft-lint [-json] [-checks list] [-v] [packages]\n\nchecks:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *checks != "" {
		byName := map[string]bool{}
		for _, c := range strings.Split(*checks, ",") {
			byName[strings.TrimSpace(c)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if byName[a.Name] {
				sel = append(sel, a)
				delete(byName, a.Name)
			}
		}
		for c := range byName {
			fmt.Fprintf(os.Stderr, "saebft-lint: unknown check %q\n", c)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	res, err := analysis.Run("", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "saebft-lint: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		out, err := analysis.EncodeJSON(res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "saebft-lint: %v\n", err)
			os.Exit(2)
		}
		os.Stdout.Write(append(out, '\n'))
	} else {
		for _, f := range res.Findings {
			fmt.Println(f)
		}
		if *verbose {
			for _, f := range res.Suppressed {
				fmt.Printf("%s (allowed: %s)\n", f, f.Reason)
			}
		}
	}
	if n := len(res.Findings); n > 0 {
		fmt.Fprintf(os.Stderr, "saebft-lint: %d finding(s), %d suppressed\n", n, len(res.Suppressed))
		os.Exit(1)
	}
	if !*jsonOut && *verbose {
		fmt.Fprintf(os.Stderr, "saebft-lint: clean (%d suppressed)\n", len(res.Suppressed))
	}
}
