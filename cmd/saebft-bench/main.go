// Command saebft-bench regenerates the paper's evaluation tables and
// figures (§5) on the simulated cluster with compute-time accounting, and
// runs the client-batching throughput sweep CI tracks:
//
//	saebft-bench -figure all          # everything, quick scale
//	saebft-bench -figure 3            # null-server latency table
//	saebft-bench -figure 4            # analytic relative-cost model
//	saebft-bench -figure 5            # response time vs load and bundle size
//	saebft-bench -figure 6            # Andrew-N phase times
//	saebft-bench -figure 7            # Andrew-N with failures
//	saebft-bench -figure all -scale full   # longer runs, 1024-bit threshold keys
//
//	saebft-bench -batching -out BENCH_batching.json
//	saebft-bench -batching -short -out BENCH_batching.json \
//	    -baseline .github/bench-baseline.json -max-regress 0.30
//
//	saebft-bench -reads -short -out BENCH_reads.json
//
// The -batching mode sweeps client-side batch size × pipeline width over
// the sim and TCP transports and writes a machine-readable report. With
// -baseline it exits non-zero when any simulated-transport point regresses
// more than -max-regress below the baseline — the bench-smoke CI gate.
//
// The -reads mode serves the same read-only workload once through the
// certified fast read path and once through full agreement, reporting paired
// read=certified / read=invoke points; -out, -baseline, and -max-regress
// work exactly as for -batching.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/saebft"
)

func main() {
	var (
		figure     = flag.String("figure", "all", "which figure to regenerate: 3, 4, 5, 6, 7, or all")
		scale      = flag.String("scale", "quick", "run scale: quick or full")
		batching   = flag.Bool("batching", false, "run the client-batching throughput sweep instead of the paper figures")
		reads      = flag.Bool("reads", false, "run the certified-read vs full-agreement read sweep instead of the paper figures")
		short      = flag.Bool("short", false, "sweeps: CI smoke grid (seconds of wall time)")
		out        = flag.String("out", "", "sweeps: write the JSON report here")
		baseline   = flag.String("baseline", "", "sweeps: compare against this baseline report")
		maxRegress = flag.Float64("max-regress", 0.30, "sweeps: tolerated fractional throughput regression vs the baseline")
		useTLS     = flag.Bool("tls", false, "batching sweep: run the TCP points over ephemeral mutual TLS, measuring the link-security cost")
		opsAddr    = flag.String("ops-addr", "", "serve an ops HTTP endpoint for the bench process itself (pprof under /debug/pprof/) while the run is in progress; CI captures its CPU profile from here")
	)
	flag.Parse()

	if *opsAddr != "" {
		// The bench's clusters each own a private registry, so the process
		// endpoint carries no metrics — it exists for the pprof handlers,
		// which profile the whole process regardless.
		srv, err := saebft.ServeOps(*opsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "saebft-bench: ops endpoint: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("saebft-bench: ops endpoint on http://%s (/debug/pprof/)\n", srv.Addr())
	}

	if *batching {
		runBatching(*short, *useTLS, *out, *baseline, *maxRegress)
		return
	}
	if *reads {
		runReads(*short, *out, *baseline, *maxRegress)
		return
	}

	var sc saebft.BenchScale
	switch *scale {
	case "quick":
		sc = saebft.BenchQuick
	case "full":
		sc = saebft.BenchFull
	default:
		fmt.Fprintf(os.Stderr, "saebft-bench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	figures := saebft.BenchFigures()
	if *figure != "all" {
		figures = []string{*figure}
	}
	for _, fig := range figures {
		fmt.Printf("=== Figure %s ===\n", fig)
		out, err := saebft.RunBenchFigure(fig, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "saebft-bench: figure %s: %v\n", fig, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}

func runBatching(short, useTLS bool, out, baseline string, maxRegress float64) {
	rep, err := saebft.RunBatchingBench(saebft.BatchBenchConfig{Short: short, TLS: useTLS})
	if err != nil {
		fmt.Fprintf(os.Stderr, "saebft-bench: batching sweep: %v\n", err)
		os.Exit(1)
	}
	for _, p := range rep.Points {
		// Sim points report virtual time, except the wall-clock-measured
		// crypto pair (VirtualMs unset) — see BenchPoint.
		clock := fmt.Sprintf("wall %8.1fms", p.WallMs)
		if p.VirtualMs > 0 {
			clock = fmt.Sprintf("virt %8.1fms", p.VirtualMs)
		}
		batch := "off"
		if p.BatchOps > 0 {
			batch = fmt.Sprintf("%d", p.BatchOps)
		}
		store := "mem"
		if p.Storage {
			store = "wal"
		}
		link := "tcp"
		if p.TLS {
			link = "tls"
		}
		if p.Transport == "sim" {
			link = "sim"
		}
		tag := ""
		if p.Obs != "" {
			tag = "  obs=" + p.Obs
		}
		if p.Crypto != "" {
			tag += "  crypto=" + p.Crypto
		}
		fmt.Printf("%-4s pipeline=%d batch=%-3s store=%s ops=%-4d %s  %9.0f ops/s  mean-lat %6.1fms  batches=%-3d width=%d%s\n",
			link, p.Pipeline, batch, store, p.Ops, clock, p.Throughput, p.MeanLatMs, p.Batches, p.FinalWidth, tag)
	}
	writeAndGate(rep, out, baseline, maxRegress)
}

func runReads(short bool, out, baseline string, maxRegress float64) {
	rep, err := saebft.RunReadBench(saebft.ReadBenchConfig{Short: short})
	if err != nil {
		fmt.Fprintf(os.Stderr, "saebft-bench: read sweep: %v\n", err)
		os.Exit(1)
	}
	for _, p := range rep.Points {
		clock := fmt.Sprintf("wall %8.1fms", p.WallMs)
		if p.Transport == "sim" {
			clock = fmt.Sprintf("virt %8.1fms", p.VirtualMs)
		}
		fmt.Printf("%-4s pipeline=%d read=%-9s ops=%-4d %s  %9.0f ops/s  mean-lat %6.1fms\n",
			p.Transport, p.Pipeline, p.Read, p.Ops, clock, p.Throughput, p.MeanLatMs)
	}
	writeAndGate(rep, out, baseline, maxRegress)
}

// writeAndGate applies the shared -out / -baseline / -max-regress handling
// to a finished sweep report.
func writeAndGate(rep *saebft.BenchReport, out, baseline string, maxRegress float64) {
	if out != "" {
		if err := rep.WriteFile(out); err != nil {
			fmt.Fprintf(os.Stderr, "saebft-bench: writing %s: %v\n", out, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", out)
	}
	if baseline != "" {
		base, err := saebft.LoadBenchReport(baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "saebft-bench: loading baseline: %v\n", err)
			os.Exit(1)
		}
		if err := saebft.CompareBenchReports(rep, base, maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("within %.0f%% of baseline %s\n", maxRegress*100, baseline)
	}
}
