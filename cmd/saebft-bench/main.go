// Command saebft-bench regenerates the paper's evaluation tables and
// figures (§5) on the simulated cluster with compute-time accounting:
//
//	saebft-bench -figure all          # everything, quick scale
//	saebft-bench -figure 3            # null-server latency table
//	saebft-bench -figure 4            # analytic relative-cost model
//	saebft-bench -figure 5            # response time vs load and bundle size
//	saebft-bench -figure 6            # Andrew-N phase times
//	saebft-bench -figure 7            # Andrew-N with failures
//	saebft-bench -figure all -scale full   # longer runs, 1024-bit threshold keys
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/saebft"
)

func main() {
	var (
		figure = flag.String("figure", "all", "which figure to regenerate: 3, 4, 5, 6, 7, or all")
		scale  = flag.String("scale", "quick", "run scale: quick or full")
	)
	flag.Parse()

	var sc saebft.BenchScale
	switch *scale {
	case "quick":
		sc = saebft.BenchQuick
	case "full":
		sc = saebft.BenchFull
	default:
		fmt.Fprintf(os.Stderr, "saebft-bench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	figures := saebft.BenchFigures()
	if *figure != "all" {
		figures = []string{*figure}
	}
	for _, fig := range figures {
		fmt.Printf("=== Figure %s ===\n", fig)
		out, err := saebft.RunBenchFigure(fig, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "saebft-bench: figure %s: %v\n", fig, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}
