// Command saebft-bench regenerates the paper's evaluation tables and
// figures (§5) on the simulated cluster with compute-time accounting:
//
//	saebft-bench -figure all          # everything, quick scale
//	saebft-bench -figure 3            # null-server latency table
//	saebft-bench -figure 4            # analytic relative-cost model
//	saebft-bench -figure 5            # response time vs load and bundle size
//	saebft-bench -figure 6            # Andrew-N phase times
//	saebft-bench -figure 7            # Andrew-N with failures
//	saebft-bench -figure all -scale full   # longer runs, 1024-bit threshold keys
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		figure = flag.String("figure", "all", "which figure to regenerate: 3, 4, 5, 6, 7, or all")
		scale  = flag.String("scale", "quick", "run scale: quick or full")
	)
	flag.Parse()

	var sc bench.Scale
	switch *scale {
	case "quick":
		sc = bench.QuickScale()
	case "full":
		sc = bench.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "saebft-bench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	run := func(name string, f func() (string, error)) {
		fmt.Printf("=== %s ===\n", name)
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "saebft-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	want := func(fig string) bool { return *figure == "all" || *figure == fig }

	if want("3") {
		run("Figure 3 (latency)", func() (string, error) {
			out, _, err := bench.Figure3(sc)
			return out, err
		})
	}
	if want("4") {
		run("Figure 4 (cost model)", func() (string, error) {
			return bench.Figure4(), nil
		})
	}
	if want("5") {
		run("Figure 5 (throughput)", func() (string, error) {
			out, _, err := bench.Figure5(sc)
			return out, err
		})
	}
	if want("6") {
		run("Figure 6 (Andrew)", func() (string, error) {
			out, _, err := bench.Figure6(sc)
			return out, err
		})
	}
	if want("7") {
		run("Figure 7 (Andrew with failures)", func() (string, error) {
			out, _, err := bench.Figure7(sc)
			return out, err
		})
	}
}
